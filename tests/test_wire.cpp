#include <gtest/gtest.h>

#include <random>

#include "sharqfec/wire.hpp"

namespace sharq::sfq::wire {
namespace {

TEST(Wire, DataRoundTrip) {
  DataMsg m;
  m.group = 42;
  m.index = 7;
  m.k = 16;
  m.initial_shards = 19;
  m.groups_total = 64;
  m.bytes = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>{1, 2, 3, 255});
  auto buf = encode(m);
  auto any = decode(buf);
  ASSERT_TRUE(any.has_value());
  auto* d = std::get_if<DataMsg>(&*any);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->group, 42u);
  EXPECT_EQ(d->index, 7);
  EXPECT_EQ(d->k, 16);
  EXPECT_EQ(d->initial_shards, 19);
  EXPECT_EQ(d->groups_total, 64u);
  ASSERT_NE(d->bytes, nullptr);
  EXPECT_EQ(*d->bytes, (std::vector<std::uint8_t>{1, 2, 3, 255}));
}

TEST(Wire, DataNullPayloadPreserved) {
  DataMsg m;
  m.bytes = nullptr;
  auto any = decode(encode(m));
  ASSERT_TRUE(any.has_value());
  EXPECT_EQ(std::get<DataMsg>(*any).bytes, nullptr);

  m.bytes = std::make_shared<const std::vector<std::uint8_t>>();
  any = decode(encode(m));
  ASSERT_TRUE(any.has_value());
  ASSERT_NE(std::get<DataMsg>(*any).bytes, nullptr);
  EXPECT_TRUE(std::get<DataMsg>(*any).bytes->empty());
}

TEST(Wire, NackRoundTripWithHints) {
  NackMsg m;
  m.group = 9;
  m.zone = 3;
  m.llc = 4;
  m.needed = 2;
  m.max_id_seen = 21;
  m.sender = 57;
  m.hints = {{1, 8, 0.0205}, {0, 0, 0.0817}};
  auto any = decode(encode(m));
  ASSERT_TRUE(any.has_value());
  auto& n = std::get<NackMsg>(*any);
  EXPECT_EQ(n.zone, 3);
  EXPECT_EQ(n.llc, 4);
  EXPECT_EQ(n.needed, 2);
  EXPECT_EQ(n.max_id_seen, 21);
  ASSERT_EQ(n.hints.size(), 2u);
  EXPECT_EQ(n.hints[0].zcr, 8);
  EXPECT_DOUBLE_EQ(n.hints[1].dist, 0.0817);
}

TEST(Wire, RepairRoundTrip) {
  RepairMsg m;
  m.group = 5;
  m.index = 30;
  m.k = 16;
  m.new_max_id = 31;
  m.repairer = 14;
  m.zone = 6;
  m.preemptive = true;
  m.hints = {{6, 14, 0.02}};
  m.bytes = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(1000, 0xAB));
  auto any = decode(encode(m));
  ASSERT_TRUE(any.has_value());
  auto& r = std::get<RepairMsg>(*any);
  EXPECT_TRUE(r.preemptive);
  EXPECT_EQ(r.index, 30);
  EXPECT_EQ(r.bytes->size(), 1000u);
  EXPECT_EQ((*r.bytes)[999], 0xAB);
}

TEST(Wire, SessionRoundTrip) {
  SessionMsg m;
  m.sender = 11;
  m.zone = 2;
  m.ts = 12.3456789;
  m.zcr = 5;
  m.zcr_parent_dist = 0.042;
  m.max_group_seen = 63;
  m.seen_any_data = true;
  m.entries = {{12, 10.5, 0.25, 0.041}, {13, 11.0, 0.1, -1.0}};
  auto any = decode(encode(m));
  ASSERT_TRUE(any.has_value());
  auto& s = std::get<SessionMsg>(*any);
  EXPECT_DOUBLE_EQ(s.ts, 12.3456789);
  EXPECT_EQ(s.zcr, 5);
  EXPECT_TRUE(s.seen_any_data);
  ASSERT_EQ(s.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(s.entries[1].rtt_est, -1.0);
}

TEST(Wire, ElectionMessagesRoundTrip) {
  {
    ZcrChallengeMsg m;
    m.challenger = 3;
    m.zone = 1;
    m.challenge_id = 0xDEADBEEFCAFEull;
    auto any = decode(encode(m));
    ASSERT_TRUE(any.has_value());
    EXPECT_EQ(std::get<ZcrChallengeMsg>(*any).challenge_id,
              0xDEADBEEFCAFEull);
  }
  {
    ZcrResponseMsg m;
    m.responder = 0;
    m.zone = 1;
    m.challenge_id = 99;
    m.processing_delay = 0.001;
    auto any = decode(encode(m));
    ASSERT_TRUE(any.has_value());
    EXPECT_DOUBLE_EQ(std::get<ZcrResponseMsg>(*any).processing_delay, 0.001);
  }
  {
    ZcrTakeoverMsg m;
    m.new_zcr = 2;
    m.zone = 1;
    m.dist_to_parent = 0.0101;
    auto any = decode(encode(m));
    ASSERT_TRUE(any.has_value());
    EXPECT_DOUBLE_EQ(std::get<ZcrTakeoverMsg>(*any).dist_to_parent, 0.0101);
  }
}

TEST(Wire, PeekType) {
  NackMsg m;
  auto buf = encode(m);
  EXPECT_EQ(peek_type(buf.data(), buf.size()), MsgType::kNack);
  EXPECT_EQ(peek_type(buf.data(), 1), std::nullopt);
  buf[0] = 99;
  EXPECT_EQ(peek_type(buf.data(), buf.size()), std::nullopt);
}

TEST(Wire, TruncationAlwaysRejected) {
  RepairMsg m;
  m.hints = {{1, 2, 3.0}, {4, 5, 6.0}};
  m.bytes = std::make_shared<const std::vector<std::uint8_t>>(
      std::vector<std::uint8_t>(64, 7));
  auto buf = encode(m);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_EQ(decode(buf.data(), cut), std::nullopt) << "cut=" << cut;
  }
  EXPECT_TRUE(decode(buf).has_value());
}

TEST(Wire, BadVersionRejected) {
  DataMsg m;
  auto buf = encode(m);
  buf[1] = kWireVersion + 1;
  EXPECT_EQ(decode(buf), std::nullopt);
}

TEST(Wire, FuzzNeverCrashes) {
  std::mt19937 rng(1234);
  // Random garbage.
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<std::uint8_t> buf(rng() % 200);
    for (auto& b : buf) b = rng() & 0xff;
    (void)decode(buf);  // must not crash or overrun
  }
  // Mutated valid messages.
  SessionMsg m;
  m.entries.resize(5);
  auto base = encode(m);
  for (int trial = 0; trial < 3000; ++trial) {
    auto buf = base;
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      buf[rng() % buf.size()] = rng() & 0xff;
    }
    (void)decode(buf);
  }
  SUCCEED();
}

TEST(Wire, HintCountOverflowRejected) {
  NackMsg m;
  auto buf = encode(m);
  // Patch the hint count (last 2 bytes of an empty-hints NACK) to a huge
  // value with no data behind it.
  buf[buf.size() - 2] = 0xff;
  buf[buf.size() - 1] = 0xff;
  EXPECT_EQ(decode(buf), std::nullopt);
}

}  // namespace
}  // namespace sharq::sfq::wire
