#include <gtest/gtest.h>

#include <sstream>

#include "stats/report.hpp"
#include "stats/time_series.hpp"
#include "stats/traffic_recorder.hpp"

namespace sharq::stats {
namespace {

TEST(BinnedSeries, BinsByWidth) {
  BinnedSeries s(0.1);
  s.add(0.05);
  s.add(0.09);
  s.add(0.10);
  s.add(0.25, 2.0);
  EXPECT_EQ(s.bin_count(), 3);
  EXPECT_DOUBLE_EQ(s.bin(0), 2.0);
  EXPECT_DOUBLE_EQ(s.bin(1), 1.0);
  EXPECT_DOUBLE_EQ(s.bin(2), 2.0);
  EXPECT_DOUBLE_EQ(s.total(), 5.0);
  EXPECT_DOUBLE_EQ(s.peak(), 2.0);
  EXPECT_DOUBLE_EQ(s.bin(99), 0.0);
  EXPECT_DOUBLE_EQ(s.bin_start(2), 0.2);
}

TEST(BinnedSeries, NegativeTimeClamps) {
  BinnedSeries s(1.0);
  s.add(-5.0);
  EXPECT_DOUBLE_EQ(s.bin(0), 1.0);
}

TEST(Summary, QuantilesAndMoments) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  Summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.p50, 50.5, 0.01);
  EXPECT_NEAR(s.p90, 90.1, 0.01);
}

TEST(Summary, EmptyIsZero) {
  Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(TrafficRecorder, RecordsPerNodeAndClass) {
  TrafficRecorder rec(3, 0.1);
  net::Packet p;
  p.cls = net::TrafficClass::kData;
  p.size_bytes = 100;
  rec.on_deliver(0.05, 1, p);
  rec.on_deliver(0.15, 1, p);
  p.cls = net::TrafficClass::kNack;
  rec.on_deliver(0.05, 2, p);
  EXPECT_DOUBLE_EQ(rec.node_total(1, net::TrafficClass::kData), 2.0);
  EXPECT_DOUBLE_EQ(rec.node_total(2, net::TrafficClass::kNack), 1.0);
  EXPECT_DOUBLE_EQ(rec.node_total(1, net::TrafficClass::kNack), 0.0);
  EXPECT_DOUBLE_EQ(rec.total_series(net::TrafficClass::kData).total(), 2.0);
  EXPECT_EQ(rec.bytes_delivered(), 300u);
}

TEST(TrafficRecorder, MeanOverNodes) {
  TrafficRecorder rec(4, 0.1);
  net::Packet d;
  d.cls = net::TrafficClass::kData;
  net::Packet r;
  r.cls = net::TrafficClass::kRepair;
  rec.on_deliver(0.0, 1, d);
  rec.on_deliver(0.0, 1, r);
  rec.on_deliver(0.0, 2, d);
  auto mean = rec.mean_over_nodes(
      {1, 2}, {net::TrafficClass::kData, net::TrafficClass::kRepair});
  ASSERT_EQ(mean.size(), 1u);
  EXPECT_DOUBLE_EQ(mean[0], 1.5);
}

TEST(TrafficRecorder, WatchOnlyFiltersPerNode) {
  TrafficRecorder rec(3, 0.1);
  rec.watch_only({2});
  net::Packet p;
  p.cls = net::TrafficClass::kData;
  rec.on_deliver(0.0, 1, p);
  rec.on_deliver(0.0, 2, p);
  EXPECT_DOUBLE_EQ(rec.node_total(1, net::TrafficClass::kData), 0.0);
  EXPECT_DOUBLE_EQ(rec.node_total(2, net::TrafficClass::kData), 1.0);
  EXPECT_DOUBLE_EQ(rec.total_series(net::TrafficClass::kData).total(), 2.0);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "2.5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(PrintSeries, EmitsHeaderAndPairs) {
  std::ostringstream os;
  print_series(os, "test", {1.0, 2.0}, 0.5, 10.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("# series: test"), std::string::npos);
  EXPECT_NE(out.find("10 1"), std::string::npos);
  EXPECT_NE(out.find("10.5 2"), std::string::npos);
}

}  // namespace
}  // namespace sharq::stats
