#include <gtest/gtest.h>

#include "rm/timers.hpp"

namespace sharq::rm {
namespace {

TEST(TimerPolicy, RequestDelayWithinWindow) {
  TimerPolicy p{2.0, 2.0, 1.0, 1.0};
  sim::Rng rng(1);
  const double d = 0.05;
  for (int i = 0; i < 1000; ++i) {
    const double delay = p.request_delay(rng, d, 0);
    EXPECT_GE(delay, 2.0 * d);
    EXPECT_LE(delay, 4.0 * d);
  }
}

TEST(TimerPolicy, BackoffDoublesWindow) {
  TimerPolicy p{2.0, 2.0, 1.0, 1.0};
  sim::Rng rng(2);
  const double d = 0.05;
  for (int stage = 0; stage < 6; ++stage) {
    const double scale = static_cast<double>(1 << stage);
    for (int i = 0; i < 200; ++i) {
      const double delay = p.request_delay(rng, d, stage);
      EXPECT_GE(delay, scale * 2.0 * d);
      EXPECT_LE(delay, scale * 4.0 * d);
    }
  }
}

TEST(TimerPolicy, BackoffStageClamped) {
  TimerPolicy p{2.0, 2.0, 1.0, 1.0};
  sim::Rng rng(3);
  // Very large and negative stages must not overflow or misbehave.
  const double hi = p.request_delay(rng, 0.01, 1000);
  EXPECT_LE(hi, (1 << 16) * 4.0 * 0.01 + 1e-9);
  const double lo = p.request_delay(rng, 0.01, -5);
  EXPECT_GE(lo, 2.0 * 0.01);
  EXPECT_LE(lo, 4.0 * 0.01);
}

TEST(TimerPolicy, ReplyDelayWithinWindow) {
  TimerPolicy p{2.0, 2.0, 1.0, 1.0};
  sim::Rng rng(4);
  const double d = 0.02;
  for (int i = 0; i < 1000; ++i) {
    const double delay = p.reply_delay(rng, d);
    EXPECT_GE(delay, d);
    EXPECT_LE(delay, 2.0 * d);
  }
}

TEST(TimerPolicy, CustomConstants) {
  TimerPolicy p{0.5, 1.0, 3.0, 2.0};
  sim::Rng rng(5);
  const double d = 0.1;
  for (int i = 0; i < 200; ++i) {
    const double rq = p.request_delay(rng, d, 0);
    EXPECT_GE(rq, 0.05);
    EXPECT_LE(rq, 0.15);
    const double rp = p.reply_delay(rng, d);
    EXPECT_GE(rp, 0.3);
    EXPECT_LE(rp, 0.5);
  }
}

TEST(SessionStagger, StartupThenSteady) {
  SessionStagger s;
  sim::Rng rng(6);
  for (int sent = 0; sent < 3; ++sent) {
    for (int i = 0; i < 100; ++i) {
      const double d = s.next_delay(rng, sent);
      EXPECT_GE(d, 0.05);
      EXPECT_LE(d, 0.25);
    }
  }
  for (int i = 0; i < 100; ++i) {
    const double d = s.next_delay(rng, 3);
    EXPECT_GE(d, 0.9);
    EXPECT_LE(d, 1.1);
  }
}

TEST(SessionStagger, PaperConstants) {
  SessionStagger s;
  EXPECT_DOUBLE_EQ(s.steady_lo, 0.9);
  EXPECT_DOUBLE_EQ(s.steady_hi, 1.1);
  EXPECT_DOUBLE_EQ(s.startup_lo, 0.05);
  EXPECT_DOUBLE_EQ(s.startup_hi, 0.25);
  EXPECT_EQ(s.startup_count, 3);
}

}  // namespace
}  // namespace sharq::rm
