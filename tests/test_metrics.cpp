#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"
#include "topo/figure10.hpp"

namespace sharq::stats {
namespace {

// --- primitive semantics -----------------------------------------------------

TEST(MetricsCounter, StartsAtZeroAndAccumulates) {
  Metrics m;
  Counter& c = m.counter("x.count");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(m.counter_total("x.count"), 42u);
}

TEST(MetricsCounter, SameNameAndLabelsReturnTheSameChild) {
  Metrics m;
  Counter& a = m.counter("x.count", {{"node", "3"}});
  Counter& b = m.counter("x.count", {{"node", "3"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(m.counter_value("x.count", {{"node", "3"}}), 1u);
  EXPECT_EQ(m.counter_value("x.count", {{"node", "4"}}), 0u);
}

TEST(MetricsGauge, SetAndSetMax) {
  Metrics m;
  Gauge& g = m.gauge("x.level");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.set_max(0.5);  // lower: no change
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.set_max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
  EXPECT_DOUBLE_EQ(m.gauge_value("x.level", {}), 7.0);
  EXPECT_DOUBLE_EQ(m.gauge_value("absent", {}, -1.0), -1.0);
}

TEST(MetricsHistogram, Log2BucketingAndOverflow) {
  Metrics m;
  // Bounds: 1, 2, 4.
  Histogram& h = m.histogram("x.lat", {}, /*least_bound=*/1.0,
                             /*bucket_count=*/3);
  h.observe(-1.0);  // <= 0 lands in bucket 0
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(9.0);   // overflow
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), -1.0 + 0.5 + 1.0 + 1.5 + 4.0 + 9.0);
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bound(2), 4.0);
}

TEST(MetricsRegistry, TypeMismatchAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Metrics m;
  m.counter("x");
  EXPECT_DEATH(m.gauge("x"), "re-registered");
}

// --- label keys and export ordering ------------------------------------------

TEST(MetricsRegistry, LabelKeyIsInsertionOrderIndependent) {
  Metrics m;
  // Labels is an ordered map, so these two spellings are one child.
  Counter& a = m.counter("x", Labels{{"zone", "2"}, {"node", "1"}});
  Counter& b = m.counter("x", Labels{{"node", "1"}, {"zone", "2"}});
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(m.counter_value("x", {{"node", "1"}, {"zone", "2"}}), 1u);
}

TEST(MetricsRegistry, ExportOrderIgnoresRegistrationOrder) {
  // Register families and children in reverse lexicographic order; the
  // export must come out sorted anyway.
  Metrics m;
  m.counter("zz.second", {{"node", "9"}}).inc(9);
  m.counter("zz.second", {{"node", "10"}}).inc(10);
  m.counter("aa.first").inc();
  std::ostringstream os;
  m.write_json(os);
  EXPECT_EQ(os.str(),
            "{\"schema\":\"sharqfec.metrics.v1\",\"metrics\":{"
            "\"aa.first\":{\"type\":\"counter\",\"values\":{\"\":1}},"
            "\"zz.second\":{\"type\":\"counter\",\"values\":"
            "{\"node=10\":10,\"node=9\":9}}}}");
}

TEST(MetricsRegistry, GoldenJsonAllThreeTypes) {
  Metrics m;
  m.counter("a.count", {{"node", "1"}}).inc(3);
  m.counter("a.count", {{"node", "2"}}).inc();
  m.gauge("b.level").set(0.5);
  Histogram& h = m.histogram("c.lat", {}, 1.0, 2);  // bounds: 1, 2
  h.observe(0.5);
  h.observe(3.0);  // past the last bound: overflow
  std::ostringstream os;
  m.write_json(os);
  EXPECT_EQ(os.str(),
            "{\"schema\":\"sharqfec.metrics.v1\",\"metrics\":{"
            "\"a.count\":{\"type\":\"counter\",\"values\":"
            "{\"node=1\":3,\"node=2\":1}},"
            "\"b.level\":{\"type\":\"gauge\",\"values\":{\"\":0.5}},"
            "\"c.lat\":{\"type\":\"histogram\",\"values\":{\"\":"
            "{\"count\":2,\"sum\":3.5,\"least_bound\":1,"
            "\"buckets\":[1,0],\"overflow\":1}}}}}");
  std::ostringstream tos;
  m.write_totals_json(tos);
  EXPECT_EQ(tos.str(),
            "{\"a.count\":4,\"b.level\":0.5,"
            "\"c.lat\":{\"count\":2,\"sum\":3.5}}");
}

TEST(MetricsRegistry, JsonEscapesLabelValues) {
  Metrics m;
  m.counter("x", {{"k", "a\"b\\c"}}).inc();
  std::ostringstream os;
  m.write_json(os);
  EXPECT_NE(os.str().find("\"k=a\\\"b\\\\c\":1"), std::string::npos)
      << os.str();
}

// --- snapshot / delta --------------------------------------------------------

TEST(MetricsSnapshot, DeltaSubtractsCountersKeepsGauges) {
  Metrics m;
  Counter& c = m.counter("c", {{"node", "0"}});
  Gauge& g = m.gauge("g");
  Histogram& h = m.histogram("h", {}, 1.0, 2);
  c.inc(10);
  g.set(1.0);
  h.observe(0.5);
  const Metrics::Snapshot then = m.snapshot();
  c.inc(5);
  g.set(9.0);
  h.observe(0.5);
  h.observe(100.0);
  m.counter("c", {{"node", "1"}}).inc(7);  // child born after `then`
  const Metrics::Snapshot d = Metrics::delta(m.snapshot(), then);

  EXPECT_DOUBLE_EQ(d.families.at("c").values.at("node=0").scalar, 5.0);
  // A child absent from `then` passes through unchanged.
  EXPECT_DOUBLE_EQ(d.families.at("c").values.at("node=1").scalar, 7.0);
  EXPECT_DOUBLE_EQ(d.families.at("g").values.at("").scalar, 9.0);
  const auto& hv = d.families.at("h").values.at("");
  EXPECT_EQ(hv.count, 2u);
  EXPECT_DOUBLE_EQ(hv.sum, 100.5);
  EXPECT_EQ(hv.buckets[0], 1u);
  EXPECT_EQ(hv.overflow, 1u);
}

TEST(MetricsSnapshot, SnapshotJsonMatchesLiveJson) {
  Metrics m;
  m.counter("c").inc(3);
  m.gauge("g").set(0.25);
  std::ostringstream live, snap;
  m.write_json(live);
  Metrics::write_json(snap, m.snapshot());
  EXPECT_EQ(live.str(), snap.str());
}

// --- event-queue instrumentation ---------------------------------------------

TEST(MetricsSim, EventTagCountersAndHighWater) {
  Metrics m;
  sim::Simulator simu;
  simu.set_metrics(&m);
  simu.after(1.0, [] {}, "tick");
  const sim::EventId id = simu.after(2.0, [] {}, "tick");
  simu.after(3.0, [] {});  // no tag: counted under "untagged"
  simu.cancel(id);
  simu.run();
  EXPECT_EQ(m.counter_value("sim.events_scheduled", {{"tag", "tick"}}), 2u);
  EXPECT_EQ(m.counter_value("sim.events_cancelled", {{"tag", "tick"}}), 1u);
  EXPECT_EQ(m.counter_value("sim.events_fired", {{"tag", "tick"}}), 1u);
  EXPECT_EQ(m.counter_value("sim.events_scheduled", {{"tag", "untagged"}}),
            1u);
  EXPECT_EQ(m.counter_value("sim.events_fired", {{"tag", "untagged"}}), 1u);
  // All three events were pending at once before anything fired.
  EXPECT_DOUBLE_EQ(m.gauge_value("sim.queue_high_water", {}), 3.0);
}

// --- end-to-end on the paper's Figure 10 topology ----------------------------

struct Fig10Run {
  std::string json;
  std::uint64_t nacks = 0, suppressed = 0, repairs = 0, preemptive = 0;
  std::uint64_t repairs_by_level_sum = 0;
  std::uint64_t events_scheduled = 0, events_fired = 0, events_cancelled = 0;
  std::uint64_t executed = 0;
  std::size_t levels = 0;
  bool complete = false;
};

Fig10Run run_fig10(std::uint64_t seed) {
  Fig10Run out;
  Metrics m;
  sim::Simulator simu(seed);
  net::Network net(simu);
  simu.set_metrics(&m);
  net.set_metrics(&m);
  const topo::Figure10 t = topo::make_figure10(net);
  sfq::Config cfg;
  cfg.metrics = &m;
  rm::DeliveryLog log;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(16, 6.0);
  simu.run_until(45.0);

  std::uint64_t insp_nacks = 0, insp_repairs = 0, insp_preemptive = 0;
  for (const auto& a : s.agents()) {
    insp_nacks += a->transfer().nacks_sent();
    insp_repairs += a->transfer().repairs_sent();
    insp_preemptive += a->transfer().preemptive_repairs_sent();
  }
  out.nacks = m.counter_total("sharqfec.nacks_sent");
  out.suppressed = m.counter_total("sharqfec.nacks_suppressed");
  out.repairs = m.counter_total("sharqfec.repairs_sent");
  out.preemptive = m.counter_total("sharqfec.preemptive_repairs");
  out.complete = s.all_complete(16);
  out.executed = simu.events_executed();
  out.events_scheduled = m.counter_total("sim.events_scheduled");
  out.events_fired = m.counter_total("sim.events_fired");
  out.events_cancelled = m.counter_total("sim.events_cancelled");

  // The registry must agree with the engines' own inspection counters:
  // they are maintained at the same sites from independent variables.
  EXPECT_EQ(out.nacks, insp_nacks);
  EXPECT_EQ(out.repairs, insp_repairs);
  EXPECT_EQ(out.preemptive, insp_preemptive);

  // Per-level repair counters must partition the total. Chains differ per
  // agent (the source sits in the root zone only; leaves carry the full
  // root/mesh/leaf chain), so walk each agent's own chain.
  for (const auto& a : s.agents()) {
    const std::size_t chain = a->session().chain().size();
    out.levels = std::max(out.levels, chain);
    for (std::size_t l = 0; l < chain; ++l) {
      out.repairs_by_level_sum += m.counter_value(
          "sharqfec.repairs_sent",
          {{"level", std::to_string(l)},
           {"node", std::to_string(a->session().node())}});
    }
  }

  std::ostringstream os;
  m.write_json(os);
  out.json = os.str();
  return out;
}

TEST(MetricsE2E, Figure10KnownCountersAndConsistency) {
  const Fig10Run r = run_fig10(7);
  EXPECT_TRUE(r.complete);
  // The lossy Figure 10 tree always provokes recovery traffic, and the
  // zone-scoped timers always suppress some of it (paper LDP rule 6).
  EXPECT_GT(r.nacks, 0u);
  EXPECT_GT(r.suppressed, 0u);
  EXPECT_GT(r.repairs, 0u);
  EXPECT_GT(r.preemptive, 0u);
  EXPECT_EQ(r.repairs_by_level_sum, r.repairs);
  EXPECT_EQ(r.levels, 3u);  // root / mesh / leaf zone chain
  // Every fired event was scheduled; cancelled ones never fire.
  EXPECT_EQ(r.events_fired, r.executed);
  EXPECT_GE(r.events_scheduled, r.events_fired + r.events_cancelled);
}

TEST(MetricsE2E, Figure10SameSeedIsByteIdentical) {
  const Fig10Run a = run_fig10(12345);
  const Fig10Run b = run_fig10(12345);
  EXPECT_EQ(a.json, b.json);
}

TEST(MetricsE2E, Figure10DifferentSeedsDiverge) {
  // Sanity for the determinism test above: the export is sensitive to the
  // run, not a constant.
  const Fig10Run a = run_fig10(1);
  const Fig10Run b = run_fig10(2);
  EXPECT_NE(a.json, b.json);
}

}  // namespace
}  // namespace sharq::stats
