#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "srm/session.hpp"
#include "topo/figure10.hpp"
#include "topo/shapes.hpp"

namespace sharq {
namespace {

// --- failure injection & adverse-condition tests -----------------------------

TEST(Failure, BurstLossGilbertElliottStillDelivers) {
  sim::Simulator simu{23};
  net::Network net{simu};
  net::LinkConfig link;
  topo::BalancedTree t = topo::make_balanced_tree(net, 2, 3, link);
  // Replace every link's loss process with a bursty one (~9% mean).
  for (net::LinkId l = 0; l < net.link_count(); ++l) {
    net.set_loss_model(
        l, std::make_unique<net::GilbertElliottLoss>(0.02, 0.2, 0.01, 0.5));
  }
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  z.assign(t.root, root);
  for (std::size_t i = 0; i < t.levels[1].size(); ++i) {
    const net::ZoneId sub = z.add_zone(root);
    z.assign(t.levels[1][i], sub);
    for (int leaf = 0; leaf < 3; ++leaf) {
      z.assign(t.levels[2][i * 3 + leaf], sub);
    }
  }
  std::vector<net::NodeId> receivers(t.all.begin() + 1, t.all.end());
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.root, receivers, cfg, &log);
  s.start();
  s.send_stream(16, 6.0);
  simu.run_until(120.0);
  for (net::NodeId r : receivers) {
    EXPECT_TRUE(log.complete(r, 16)) << "receiver " << r;
  }
}

TEST(Failure, ZcrDeathMidTransferRecovers) {
  // Kill an elected leaf-zone ZCR in the middle of the stream; the zone
  // re-elects and the remaining members still complete.
  sim::Simulator simu{29};
  net::Network net{simu};
  topo::Figure10 t = topo::make_figure10(net);
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(48, 6.0);

  // Middle node 8 is the natural ZCR of leaf zone 0; kill it at t=9.
  const net::NodeId victim = 8;
  simu.after(9.0, [&] {
    s.agent_for(victim).stop();
    net.detach(victim, &s.agent_for(victim));
  });
  simu.run_until(120.0);

  for (net::NodeId r : t.receivers) {
    if (r == victim) continue;
    EXPECT_TRUE(log.complete(r, 48)) << "receiver " << r;
  }
  // The orphaned zone elected a replacement ZCR among the leaves.
  const net::ZoneId zone = net.zones().smallest_zone(29);
  const net::NodeId new_zcr = s.agent_for(29).session().zcr_of(zone);
  EXPECT_NE(new_zcr, victim);
  EXPECT_NE(new_zcr, net::kNoNode);
}

TEST(Failure, RepairChannelLossHandled) {
  // Repairs themselves are lossy (the paper stresses this: "Realism was
  // further enhanced by subjecting repair packets to the same loss
  // patterns"). Even at 25% per-link loss, retries must converge.
  sim::Simulator simu{31};
  net::Network net{simu};
  net::LinkConfig lossy;
  lossy.loss_rate = 0.25;
  topo::BalancedTree t = topo::make_balanced_tree(net, 1, 4, lossy);
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  for (net::NodeId n : t.all) z.assign(n, root);
  std::vector<net::NodeId> receivers(t.all.begin() + 1, t.all.end());
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.root, receivers, cfg, &log);
  s.start();
  s.send_stream(10, 6.0);
  simu.run_until(240.0);
  for (net::NodeId r : receivers) {
    EXPECT_TRUE(log.complete(r, 10)) << "receiver " << r;
  }
}

TEST(Failure, SrmSurvivesBurstLoss) {
  sim::Simulator simu{37};
  net::Network net{simu};
  topo::BalancedTree t = topo::make_balanced_tree(net, 2, 2, net::LinkConfig{});
  for (net::LinkId l = 0; l < net.link_count(); ++l) {
    net.set_loss_model(
        l, std::make_unique<net::GilbertElliottLoss>(0.05, 0.3, 0.02, 0.4));
  }
  std::vector<net::NodeId> receivers(t.all.begin() + 1, t.all.end());
  rm::DeliveryLog log;
  srm::Config cfg;
  srm::Session s(net, t.root, receivers, cfg, &log);
  s.start();
  s.send_stream(60, 3.0);
  simu.run_until(120.0);
  for (net::NodeId r : receivers) {
    EXPECT_TRUE(log.complete(r, 60)) << "receiver " << r;
  }
}

TEST(Failure, AsymmetricLossOnlyUpstream) {
  // Loss only on forward (source->receiver) directions; NACK/session paths
  // clean. Delivery must still complete and the reverse channel must not
  // be penalised.
  sim::Simulator simu{41};
  net::Network net{simu};
  const net::NodeId src = net.add_node();
  const net::NodeId rx = net.add_node();
  net.add_duplex_link(src, rx, net::LinkConfig{});
  net.set_loss_model(net.find_link(src, rx),
                     std::make_unique<net::BernoulliLoss>(0.3));
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  z.assign(src, root);
  z.assign(rx, root);
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, src, {rx}, cfg, &log);
  s.start();
  s.send_stream(12, 6.0);
  simu.run_until(120.0);
  EXPECT_TRUE(log.complete(rx, 12));
}

TEST(Failure, TinyGroupsAndSingleReceiver) {
  // Degenerate parameters: k=1 (every packet its own group).
  sim::Simulator simu{43};
  net::Network net{simu};
  const net::NodeId src = net.add_node();
  const net::NodeId rx = net.add_node();
  net::LinkConfig lossy;
  lossy.loss_rate = 0.2;
  net.add_duplex_link(src, rx, lossy);
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  z.assign(src, root);
  z.assign(rx, root);
  rm::DeliveryLog log;
  sfq::Config cfg;
  cfg.group_size = 1;
  sfq::Session s(net, src, {rx}, cfg, &log);
  s.start();
  s.send_stream(20, 6.0);
  simu.run_until(120.0);
  EXPECT_TRUE(log.complete(rx, 20));
}

TEST(Failure, ZeroGroupStreamIsHarmless) {
  sim::Simulator simu{47};
  net::Network net{simu};
  const net::NodeId src = net.add_node();
  const net::NodeId rx = net.add_node();
  net.add_duplex_link(src, rx, net::LinkConfig{});
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  z.assign(src, root);
  z.assign(rx, root);
  sfq::Config cfg;
  sfq::Session s(net, src, {rx}, cfg);
  s.start();
  s.send_stream(0, 6.0);
  simu.run_until(20.0);
  EXPECT_EQ(s.agent_for(rx).transfer().groups_completed(), 0u);
  EXPECT_EQ(s.agent_for(rx).transfer().nacks_sent(), 0u);
}

}  // namespace
}  // namespace sharq
