// SIMD GF(256) kernel validation: every vector kernel the host supports is
// cross-checked bit-for-bit against the scalar table reference over all 256
// multipliers, odd/unaligned lengths, and batched row application; plus an
// exhaustive Reed-Solomon loss-pattern property test. Run once normally and
// once with SHARQFEC_FORCE_SCALAR=1 (the `fec_simd_force_scalar` ctest
// entry) to cover both dispatch decisions.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "fec/cpu_features.hpp"
#include "fec/gf256.hpp"
#include "fec/gf256_simd.hpp"
#include "fec/group_codec.hpp"
#include "fec/reed_solomon.hpp"

namespace {

using sharq::fec::GF256;
using sharq::fec::GroupDecoder;
using sharq::fec::GroupEncoder;
using sharq::fec::ReedSolomon;
using sharq::fec::cpu::Kernel;
namespace cpu = sharq::fec::cpu;
namespace simd = sharq::fec::simd;

std::vector<std::uint8_t> random_bytes(std::mt19937& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = rng() & 0xff;
  return out;
}

// Lengths chosen to straddle every vector width: empty, sub-vector, exact
// 16/32/64-byte multiples, one over/under, and large-with-odd-tail.
const std::size_t kSizes[] = {0,  1,  3,  15,  16,  17,   31,   32,  33,
                              63, 64, 65, 100, 255, 1000, 1024, 4109};

TEST(CpuFeatures, SupportedKernelsStartWithScalar) {
  const auto kernels = cpu::supported_kernels();
  ASSERT_FALSE(kernels.empty());
  EXPECT_EQ(kernels.front(), Kernel::kScalar);
  bool active_supported = false;
  for (Kernel k : kernels) {
    EXPECT_STRNE(cpu::kernel_name(k), "unknown");
    active_supported = active_supported || k == cpu::active_kernel();
  }
  EXPECT_TRUE(active_supported);
}

TEST(CpuFeatures, ForceScalarEnvPinsDispatch) {
  // The same binary runs twice in ctest: once plain, once with
  // SHARQFEC_FORCE_SCALAR=1. Assert the dispatcher's decision matches the
  // environment it was launched with.
  const char* force = std::getenv("SHARQFEC_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' && std::string(force) != "0") {
    EXPECT_EQ(cpu::active_kernel(), Kernel::kScalar);
  } else if (std::getenv("SHARQFEC_FORCE_KERNEL") == nullptr) {
    EXPECT_EQ(cpu::active_kernel(), cpu::supported_kernels().back());
  }
}

TEST(SimdKernels, MulAddMatchesScalarForAllMultipliers) {
  std::mt19937 rng(42);
  const auto src = random_bytes(rng, 1024 + 13);
  const auto dst0 = random_bytes(rng, 1024 + 13);
  for (Kernel k : cpu::supported_kernels()) {
    for (int c = 0; c < 256; ++c) {
      auto want = dst0;
      GF256::mul_add_scalar(want.data(), src.data(),
                            static_cast<std::uint8_t>(c), want.size());
      auto got = dst0;
      simd::mul_add(k, got.data(), src.data(), static_cast<std::uint8_t>(c),
                    got.size());
      ASSERT_EQ(want, got) << "kernel=" << cpu::kernel_name(k) << " c=" << c;
    }
  }
}

TEST(SimdKernels, MulAddMatchesScalarForAllSizesAndOffsets) {
  std::mt19937 rng(7);
  const std::uint8_t cs[] = {0, 1, 2, 0x53, 0x8e, 0xff};
  // Over-allocate so we can probe deliberately misaligned base pointers.
  const auto src_buf = random_bytes(rng, 4109 + 8);
  const auto dst_buf = random_bytes(rng, 4109 + 8);
  for (Kernel k : cpu::supported_kernels()) {
    for (std::size_t n : kSizes) {
      for (std::size_t off : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{7}}) {
        for (std::uint8_t c : cs) {
          std::vector<std::uint8_t> want(dst_buf.begin() + off,
                                         dst_buf.begin() + off + n);
          std::vector<std::uint8_t> got = want;
          GF256::mul_add_scalar(want.data(), src_buf.data() + off, c, n);
          // Feed the kernel the unaligned source pointer directly.
          simd::mul_add(k, got.data(), src_buf.data() + off, c, n);
          ASSERT_EQ(want, got)
              << "kernel=" << cpu::kernel_name(k) << " n=" << n
              << " off=" << off << " c=" << int(c);
        }
      }
    }
  }
}

TEST(SimdKernels, ScaleMatchesScalarForAllMultipliersAndSizes) {
  std::mt19937 rng(99);
  const auto base = random_bytes(rng, 4109);
  for (Kernel k : cpu::supported_kernels()) {
    for (int c = 0; c < 256; ++c) {
      auto want = base;
      GF256::scale_scalar(want.data(), static_cast<std::uint8_t>(c),
                          want.size());
      auto got = base;
      simd::scale(k, got.data(), static_cast<std::uint8_t>(c), got.size());
      ASSERT_EQ(want, got) << "kernel=" << cpu::kernel_name(k) << " c=" << c;
    }
    for (std::size_t n : kSizes) {
      std::vector<std::uint8_t> want(base.begin(), base.begin() + n);
      auto got = want;
      GF256::scale_scalar(want.data(), 0xB7, n);
      simd::scale(k, got.data(), 0xB7, n);
      ASSERT_EQ(want, got) << "kernel=" << cpu::kernel_name(k) << " n=" << n;
    }
  }
}

TEST(SimdKernels, MulAddRowsMatchesSequentialScalar) {
  std::mt19937 rng(1337);
  for (Kernel k : cpu::supported_kernels()) {
    for (int rows : {1, 2, 3, 8, 16, 31}) {
      for (std::size_t n : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                            std::size_t{65}, std::size_t{1000}}) {
        std::vector<std::vector<std::uint8_t>> srcs;
        std::vector<const std::uint8_t*> ptrs;
        std::vector<std::uint8_t> coeffs;
        for (int r = 0; r < rows; ++r) {
          srcs.push_back(random_bytes(rng, n));
          ptrs.push_back(srcs.back().data());
          // Exercise the c==0 row-skip and c==1 identity paths too.
          coeffs.push_back(r == 0 ? 0 : (r == 1 ? 1 : rng() & 0xff));
        }
        const auto dst0 = random_bytes(rng, n);
        auto want = dst0;
        for (int r = 0; r < rows; ++r) {
          GF256::mul_add_scalar(want.data(), ptrs[r], coeffs[r], n);
        }
        auto got = dst0;
        simd::mul_add_rows(k, got.data(), ptrs.data(), coeffs.data(), rows, n);
        ASSERT_EQ(want, got) << "kernel=" << cpu::kernel_name(k)
                             << " rows=" << rows << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, EncodeBitIdenticalAcrossKernels) {
  // Parity generated through any kernel must be byte-identical: receivers
  // on different hardware (or with SHARQFEC_FORCE_SCALAR set) must agree
  // on every shard.
  std::mt19937 rng(2024);
  const int k = 16, parity = 8;
  const std::size_t size = 1000;
  ReedSolomon rs(k, parity);
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<const std::uint8_t*> ptrs;
  for (int i = 0; i < k; ++i) {
    data.push_back(random_bytes(rng, size));
    ptrs.push_back(data.back().data());
  }
  for (int index = k; index < k + parity; ++index) {
    const auto reference = rs.encode_parity(index, data);
    for (Kernel kn : cpu::supported_kernels()) {
      std::vector<std::uint8_t> out(size, 0);
      simd::mul_add_rows(kn, out.data(), ptrs.data(),
                         rs.generator().row(index), k, size);
      ASSERT_EQ(reference, out)
          << "kernel=" << cpu::kernel_name(kn) << " shard=" << index;
    }
  }
}

TEST(SimdKernels, ShardSharedMatchesShard) {
  std::mt19937 rng(5);
  const int k = 8, parity = 4;
  auto codec = std::make_shared<ReedSolomon>(k, parity);
  std::vector<std::vector<std::uint8_t>> data;
  for (int i = 0; i < k; ++i) data.push_back(random_bytes(rng, 257));
  GroupEncoder enc(codec, data);
  for (int index = 0; index < enc.max_shards(); ++index) {
    const auto by_value = enc.shard(index);
    const auto shared = enc.shard_shared(index);
    ASSERT_NE(shared, nullptr);
    EXPECT_EQ(by_value, *shared) << "shard=" << index;
  }
}

// Exhaustive erasure property: for every k <= 8, r <= 4, and every subset
// of the n = k + r shards, decode succeeds and reproduces the data iff at
// least k shards survive. Runs under whichever kernel the dispatcher
// selected (the force-scalar ctest entry covers the other path).
TEST(ReedSolomonProperty, AllLossPatternsAllSmallCodes) {
  std::mt19937 rng(31337);
  const std::size_t size = 65;  // odd: exercises vector tails in decode
  for (int k = 1; k <= 8; ++k) {
    for (int r = 0; r <= 4; ++r) {
      const int n = k + r;
      ReedSolomon rs(k, r);
      std::vector<std::vector<std::uint8_t>> data;
      for (int i = 0; i < k; ++i) data.push_back(random_bytes(rng, size));
      std::vector<std::vector<std::uint8_t>> all(n);
      for (int i = 0; i < k; ++i) all[i] = data[i];
      for (int i = k; i < n; ++i) all[i] = rs.encode_parity(i, data);

      for (unsigned mask = 0; mask < (1u << n); ++mask) {
        std::vector<ReedSolomon::Shard> survivors;
        for (int i = 0; i < n; ++i) {
          if (mask & (1u << i)) survivors.push_back({i, all[i]});
        }
        const auto decoded = rs.decode(survivors);
        if (static_cast<int>(survivors.size()) >= k) {
          ASSERT_TRUE(decoded.has_value())
              << "k=" << k << " r=" << r << " mask=" << mask;
          ASSERT_EQ(*decoded, data)
              << "k=" << k << " r=" << r << " mask=" << mask;
        } else {
          ASSERT_FALSE(decoded.has_value())
              << "k=" << k << " r=" << r << " mask=" << mask;
        }
      }
    }
  }
}

}  // namespace
