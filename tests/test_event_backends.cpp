// Event-queue backend equivalence: the calendar queue (the default) and
// the binary heap (the cross-check) must produce BYTE-IDENTICAL runs for
// the same seed — same packet trace, same event count, same protocol
// outcome. Both order strictly by (time, seq), so any divergence means a
// backend broke the tie-break contract that every EXPERIMENTS.md result
// and the determinism lint rely on. Scenarios: the paper's Figure 10
// topology end to end, and a scripted chaos plan (partition + heal + ZCR
// kill) whose cancellations and re-elections exercise the lazy-deletion
// path under both backends.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/trace_writer.hpp"
#include "topo/figure10.hpp"

namespace sharq {
namespace {

using Backend = sim::EventQueue::Backend;

struct RunResult {
  std::string trace;
  std::uint64_t events = 0;
  std::uint64_t nacks = 0;
  std::uint64_t repairs = 0;
  std::vector<sim::Time> completion_times;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

RunResult run_figure10(Backend backend, std::uint64_t seed) {
  sim::Simulator simu(seed, backend);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  std::ostringstream trace;
  stats::TraceWriter tw(trace, &net, nullptr);
  net.set_sink(&tw);
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(8, 6.0);
  simu.run_until(30.0);

  RunResult r;
  r.trace = trace.str();
  r.events = simu.events_executed();
  for (auto& a : s.agents()) {
    r.nacks += a->transfer().nacks_sent();
    r.repairs += a->transfer().repairs_sent();
  }
  for (net::NodeId rcv : t.receivers) {
    for (std::uint32_t g = 0; g < 8; ++g) {
      r.completion_times.push_back(log.completion_time(rcv, g));
    }
  }
  return r;
}

TEST(EventBackendEquivalence, Figure10TraceIsByteIdentical) {
  const RunResult cal = run_figure10(Backend::kCalendar, 424242);
  const RunResult heap = run_figure10(Backend::kHeap, 424242);
  ASSERT_FALSE(cal.trace.empty());
  EXPECT_GT(cal.events, 0u);
  EXPECT_EQ(cal, heap);
}

TEST(EventBackendEquivalence, Figure10SecondSeedAgreesToo) {
  // One seed could agree by luck on a short run; a second pins it.
  EXPECT_EQ(run_figure10(Backend::kCalendar, 7), run_figure10(Backend::kHeap, 7));
}

// Scripted chaos on a hub-zone: a mid-transfer partition, its heal, and
// the zone ZCR dying. Cancelled timers, re-elections, and catch-up
// repairs make this the densest cancellation workload in the tree —
// exactly where a backend's stale-key skipping could diverge.
RunResult run_chaos(Backend backend, std::uint64_t seed) {
  sim::Simulator simu(seed, backend);
  net::Network net(simu);
  const net::NodeId source = net.add_node();
  const net::NodeId hub = net.add_node();
  const net::NodeId relay = net.add_node();
  const net::NodeId a = net.add_node();
  const net::NodeId b = net.add_node();
  net::LinkConfig up;
  up.delay = 0.020;
  net.add_duplex_link(source, hub, up);
  net::LinkConfig down;
  down.delay = 0.010;
  down.loss_rate = 0.02;
  for (net::NodeId n : {relay, a, b}) net.add_duplex_link(hub, n, down);
  const net::ZoneId root = net.zones().add_root();
  const net::ZoneId zone = net.zones().add_zone(root);
  net.zones().assign(source, root);
  for (net::NodeId n : {hub, relay, a, b}) net.zones().assign(n, zone);

  std::ostringstream trace;
  stats::TraceWriter tw(trace, &net, nullptr);
  net.set_sink(&tw);
  rm::DeliveryLog log;
  sfq::Config cfg;
  cfg.static_zcrs[zone] = relay;
  sfq::Session s(net, source, {relay, a, b}, cfg, &log);
  s.start();
  s.send_stream(12, 6.0);

  const auto plan = fault::FaultPlan::parse(
      "plan backend-equiv\n"
      "at 7.0 partition 1 3\n"
      "at 13.0 heal 1 3\n"
      "at 20.0 kill 2\n");
  EXPECT_TRUE(plan.has_value());
  fault::Injector inject(
      net, {.kill = [&](net::NodeId n) { s.remove_receiver(n); },
            .restart = [&](net::NodeId n) { s.add_receiver(n); }});
  inject.schedule(*plan);
  simu.run_until(60.0);

  RunResult r;
  r.trace = trace.str();
  r.events = simu.events_executed();
  for (auto& agent : s.agents()) {
    r.nacks += agent->transfer().nacks_sent();
    r.repairs += agent->transfer().repairs_sent();
  }
  for (net::NodeId rcv : {a, b}) {
    for (std::uint32_t g = 0; g < 12; ++g) {
      r.completion_times.push_back(log.completion_time(rcv, g));
    }
  }
  return r;
}

TEST(EventBackendEquivalence, ChaosPlanTraceIsByteIdentical) {
  const RunResult cal = run_chaos(Backend::kCalendar, 1717);
  const RunResult heap = run_chaos(Backend::kHeap, 1717);
  ASSERT_FALSE(cal.trace.empty());
  EXPECT_GT(cal.nacks + cal.repairs, 0u) << "chaos run exercised no recovery";
  EXPECT_EQ(cal, heap);
}

}  // namespace
}  // namespace sharq
