#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/ewma.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "topo/figure10.hpp"
#include "topo/shapes.hpp"

namespace sharq::sfq {
namespace {

// --- shared EWMA helper (regression: the arrival-gap slot used to be read
// with `> 0.0` while the update path seeded on `< 0.0`, so a slot seeded
// with a legitimate 0.0 sample read back as "unset") --------------------------

TEST(Ewma, UnsetSentinelReadsAsUnseeded) {
  double slot = kEwmaUnset;
  EXPECT_FALSE(ewma_seeded(slot));
}

TEST(Ewma, FirstSampleSeedsVerbatim) {
  // The first sample must not be blended with the -1.0 sentinel.
  double slot = kEwmaUnset;
  ewma_update(slot, 0.5, 0.1);
  EXPECT_DOUBLE_EQ(slot, 0.5);
  EXPECT_TRUE(ewma_seeded(slot));
}

TEST(Ewma, ZeroSampleCountsAsSeeded) {
  double slot = kEwmaUnset;
  ewma_update(slot, 0.0, 0.1);
  EXPECT_DOUBLE_EQ(slot, 0.0);
  EXPECT_TRUE(ewma_seeded(slot));
}

TEST(Ewma, NegativeSampleIgnored) {
  double slot = kEwmaUnset;
  ewma_update(slot, -3.0, 0.1);
  EXPECT_FALSE(ewma_seeded(slot));
  ewma_update(slot, 1.0, 0.1);
  ewma_update(slot, -3.0, 0.1);
  EXPECT_DOUBLE_EQ(slot, 1.0);
}

TEST(Ewma, LaterSamplesBlendWithGain) {
  double slot = kEwmaUnset;
  ewma_update(slot, 1.0, 0.25);
  ewma_update(slot, 2.0, 0.25);
  EXPECT_DOUBLE_EQ(slot, 0.75 * 1.0 + 0.25 * 2.0);
}

/// A two-zone fixture small enough to reason about exactly:
/// source -- relay -- {a, b}; zone = {relay, a, b}.
struct TwoZone {
  sim::Simulator simu{11};
  net::Network net{simu};
  net::NodeId source, relay, a, b;
  net::ZoneId root, zone;

  explicit TwoZone(double upstream_loss = 0.0, double leaf_loss = 0.0) {
    source = net.add_node();
    relay = net.add_node();
    a = net.add_node();
    b = net.add_node();
    net::LinkConfig up;
    up.delay = 0.020;
    up.loss_rate = upstream_loss;
    net.add_duplex_link(source, relay, up);
    net::LinkConfig down;
    down.delay = 0.010;
    down.loss_rate = leaf_loss;
    net.add_duplex_link(relay, a, down);
    net.add_duplex_link(relay, b, down);
    root = net.zones().add_root();
    zone = net.zones().add_zone(root);
    net.zones().assign(source, root);
    net.zones().assign(relay, zone);
    net.zones().assign(a, zone);
    net.zones().assign(b, zone);
  }
};

TEST(TransferUnit, LosslessStreamNeverNacksOrRepairs) {
  TwoZone f;
  rm::DeliveryLog log;
  Config cfg;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(6, 6.0);
  f.simu.run_until(25.0);
  for (auto& agent : s.agents()) {
    EXPECT_EQ(agent->transfer().nacks_sent(), 0u);
    EXPECT_EQ(agent->transfer().repairs_sent(), 0u);
  }
  EXPECT_TRUE(s.all_complete(6));
}

TEST(TransferUnit, ArrivalEwmaSeedsToFirstGapExactly) {
  // Lossless fixed-delay links deliver the paced stream with a constant
  // inter-arrival gap equal to the packet serialization interval, so the
  // EWMA — seeded verbatim on the first gap, then fed identical samples —
  // must sit exactly on that interval, not on a sentinel-contaminated
  // blend.
  TwoZone f;
  Config cfg;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(3, 6.0);
  f.simu.run_until(25.0);
  const double interval =
      static_cast<double>(cfg.shard_size_bytes) * 8.0 / cfg.data_rate_bps;
  for (net::NodeId n : {f.relay, f.a, f.b}) {
    EXPECT_TRUE(ewma_seeded(s.agent_for(n).transfer().arrival_ewma()));
    EXPECT_NEAR(s.agent_for(n).transfer().arrival_ewma(), interval, 1e-9);
  }
  // The source never receives data, so its slot stays unseeded.
  EXPECT_FALSE(ewma_seeded(s.source_agent().transfer().arrival_ewma()));
}

TEST(TransferUnit, GroupsCompletedCount) {
  TwoZone f;
  Config cfg;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(5, 6.0);
  f.simu.run_until(25.0);
  EXPECT_EQ(s.agent_for(f.a).transfer().groups_completed(), 5u);
  EXPECT_EQ(s.agent_for(f.a).transfer().max_group_seen(), 4u);
  EXPECT_TRUE(s.agent_for(f.a).transfer().seen_any_data());
}

TEST(TransferUnit, ZlcPredictorLearnsSteadyLoss) {
  // 20% upstream loss shared by the whole zone: the source's root-level
  // ZLC prediction must converge to roughly 20% of a group.
  TwoZone f(0.20, 0.0);
  Config cfg;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(40, 6.0);
  f.simu.run_until(90.0);
  const double pred =
      s.source_agent().transfer().predicted_zlc(f.root);
  // ~0.2 * (16 + h): expect somewhere in [1.5, 7].
  EXPECT_GT(pred, 1.0);
  EXPECT_LT(pred, 8.0);
  EXPECT_TRUE(s.all_complete(40));
}

TEST(TransferUnit, PreemptiveShardsAppearOnceLearned) {
  TwoZone f(0.20, 0.0);
  Config cfg;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(40, 6.0);
  f.simu.run_until(90.0);
  EXPECT_GT(s.source_agent().transfer().preemptive_repairs_sent(), 10u);
}

TEST(TransferUnit, InjectionDisabledSendsNoPreemptive) {
  TwoZone f(0.20, 0.0);
  Config cfg;
  cfg.injection = false;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(20, 6.0);
  f.simu.run_until(60.0);
  for (auto& agent : s.agents()) {
    EXPECT_EQ(agent->transfer().preemptive_repairs_sent(), 0u);
  }
  EXPECT_TRUE(s.all_complete(20));
}

TEST(TransferUnit, SenderOnlyMeansNoPeerRepairs) {
  TwoZone f(0.0, 0.15);
  Config cfg;
  cfg.sender_only = true;
  cfg.injection = false;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(20, 6.0);
  f.simu.run_until(60.0);
  for (std::size_t i = 1; i < s.agents().size(); ++i) {
    EXPECT_EQ(s.agents()[i]->transfer().repairs_sent(), 0u)
        << "receiver " << s.agents()[i]->node();
  }
  EXPECT_GT(s.source_agent().transfer().repairs_sent(), 0u);
  EXPECT_TRUE(s.all_complete(20));
}

TEST(TransferUnit, ZoneLocalLossRepairedInZone) {
  // Loss only on the relay->a link: repairs should come from the zone
  // (relay or b), never the source.
  TwoZone f(0.0, 0.0);
  // Make only the relay->a direction lossy.
  const net::LinkId la = f.net.find_link(f.relay, f.a);
  f.net.set_loss_model(la, std::make_unique<net::BernoulliLoss>(0.2));
  Config cfg;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(20, 6.0);
  f.simu.run_until(60.0);
  const std::uint64_t src_repairs = s.source_agent().transfer().repairs_sent();
  const std::uint64_t zone_repairs =
      s.agent_for(f.relay).transfer().repairs_sent() +
      s.agent_for(f.b).transfer().repairs_sent();
  EXPECT_GT(zone_repairs, 0u);
  // Stall probes may occasionally escalate to the root, but the zone must
  // serve the overwhelming majority of repairs for purely local loss.
  EXPECT_LT(src_repairs, zone_repairs / 2 + 1);
  EXPECT_TRUE(s.all_complete(20));
}

TEST(TransferUnit, WholeTrancheLossRecovered) {
  // Brutal: 60% upstream loss for a short stream — whole-group losses and
  // tail losses are likely; session-message progress advertisements and
  // LDP timers must still recover everything.
  TwoZone f(0.60, 0.0);
  Config cfg;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(6, 6.0);
  f.simu.run_until(120.0);
  EXPECT_TRUE(s.all_complete(6));
}

TEST(TransferUnit, EscalationReachesSourceWhenZoneCannotRepair) {
  // All upstream loss: no zone member ever has shards its peers miss, so
  // recovery must escalate to the root and be served by the source.
  TwoZone f(0.25, 0.0);
  Config cfg;
  cfg.injection = false;  // force the ARQ path
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(12, 6.0);
  f.simu.run_until(90.0);
  EXPECT_GT(s.source_agent().transfer().repairs_sent(), 0u);
  EXPECT_TRUE(s.all_complete(12));
}

TEST(TransferUnit, NacksAreCountsNotPacketIds) {
  // Two receivers lose different shards of the same group; a single
  // FEC repair can serve both, so total repairs should be well under
  // one-per-lost-packet. Statistical, but with margin.
  TwoZone f(0.0, 0.10);
  Config cfg;
  cfg.injection = false;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  s.send_stream(30, 6.0);
  f.simu.run_until(90.0);
  std::uint64_t repairs = 0;
  for (auto& agent : s.agents()) repairs += agent->transfer().repairs_sent();
  // ~30 groups * 19 shards * 10% * 2 receivers ~= 100+ individual losses,
  // but per-group max deficit is what must be repaired (~2/group).
  EXPECT_LT(repairs, 100u);
  EXPECT_TRUE(s.all_complete(30));
}

TEST(TransferUnit, RealPayloadSurvivesHeavyLoss) {
  TwoZone f(0.15, 0.15);
  Config cfg;
  cfg.real_payload = true;
  cfg.group_size = 8;
  cfg.shard_size_bytes = 128;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg);
  s.start();
  std::vector<std::uint8_t> payload(4 * 8 * 128);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 7));
  }
  s.send_stream(4, 6.0, payload);
  f.simu.run_until(90.0);
  for (net::NodeId r : {f.relay, f.a, f.b}) {
    std::vector<std::uint8_t> got;
    for (std::uint32_t g = 0; g < 4; ++g) {
      auto part = s.agent_for(r).transfer().reconstructed(g);
      got.insert(got.end(), part.begin(), part.end());
    }
    EXPECT_EQ(got, payload) << "receiver " << r;
  }
}

TEST(TransferUnit, Figure10GroupSizeSweep) {
  for (int k : {4, 8, 32}) {
    sim::Simulator simu{17};
    net::Network net{simu};
    topo::Figure10 t = topo::make_figure10(net);
    rm::DeliveryLog log;
    Config cfg;
    cfg.group_size = k;
    Session s(net, t.source, t.receivers, cfg, &log);
    s.start();
    s.send_stream(128 / k, 6.0);  // 128 packets regardless of k
    simu.run_until(90.0);
    int incomplete = 0;
    for (net::NodeId r : t.receivers) {
      if (!log.complete(r, 128 / k)) ++incomplete;
    }
    EXPECT_EQ(incomplete, 0) << "k=" << k;
  }
}

}  // namespace
}  // namespace sharq::sfq
