// Overload-robustness tests: the per-node ResourceBudget and its graceful
// degradation policies (docs/ROBUSTNESS.md). The contract under test is
// that every budgeted dimension is a deterministic cap — high waters never
// exceed it — and that shedding degrades recovery without ever breaking
// delivery: transfers still complete, duplicates still reject exactly
// once, and same-seed runs stay byte-identical.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_plan.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/budget.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/journal.hpp"
#include "stats/journal_reader.hpp"
#include "stats/metrics.hpp"
#include "topo/shapes.hpp"

namespace sharq::sfq {
namespace {

// ---------------------------------------------------------------------------
// BudgetTracker unit behaviour: state ledger, repair pacer, pressure clock.

TEST(BudgetTracker, StateLedgerTracksHighWaterAndPressure) {
  sim::Simulator simu(1);
  ResourceBudget limits;
  limits.state_bytes = 1000;
  BudgetTracker bt(limits, /*node=*/3, simu, nullptr, nullptr);
  EXPECT_FALSE(bt.over_state());
  bt.add_state(600);
  bt.add_state(600);
  EXPECT_TRUE(bt.over_state());
  EXPECT_EQ(bt.state_bytes(), 1200u);
  EXPECT_EQ(bt.state_high_water(), 1200u);
  bt.sub_state(600);
  EXPECT_FALSE(bt.over_state());
  EXPECT_EQ(bt.state_bytes(), 600u);
  EXPECT_EQ(bt.state_high_water(), 1200u);
}

TEST(BudgetTracker, RepairPacerEnforcesMinimumSpacing) {
  sim::Simulator simu(1);
  ResourceBudget limits;
  limits.repair_rate_per_s = 100.0;  // min spacing 10 ms
  BudgetTracker bt(limits, /*node=*/1, simu, nullptr, nullptr);

  EXPECT_TRUE(bt.repair_due());
  EXPECT_DOUBLE_EQ(bt.repair_wait(), 0.0);
  bt.note_repair_sent();  // t = 0
  EXPECT_FALSE(bt.repair_due());
  EXPECT_NEAR(bt.repair_wait(), 0.010, 1e-12);
  // Only one send so far: the spacing probe is still unset.
  EXPECT_EQ(bt.min_repair_spacing(), sim::kTimeNever);

  bool sent_at_10ms = false;
  simu.at(0.010, [&] {
    EXPECT_TRUE(bt.repair_due());
    bt.note_repair_sent();
    sent_at_10ms = true;
  }, "test.budget");
  simu.at(0.012, [&] {
    // 2 ms after a send: paced out again.
    EXPECT_FALSE(bt.repair_due());
    EXPECT_NEAR(bt.repair_wait(), 0.008, 1e-12);
  }, "test.budget");
  simu.run_until(1.0);
  EXPECT_TRUE(sent_at_10ms);
  EXPECT_NEAR(bt.min_repair_spacing(), 0.010, 1e-12);
}

TEST(BudgetTracker, PressureWindowExpires) {
  sim::Simulator simu(1);
  ResourceBudget limits;
  limits.state_bytes = 1;  // any_enabled, though irrelevant to the clock
  limits.pressure_window = 0.5;
  BudgetTracker bt(limits, /*node=*/2, simu, nullptr, nullptr);
  EXPECT_FALSE(bt.under_pressure());
  bt.note_shed("dedup");
  EXPECT_TRUE(bt.under_pressure());
  EXPECT_EQ(bt.sheds(), 1u);
  bool checked = false;
  simu.at(0.6, [&] {
    EXPECT_FALSE(bt.under_pressure());
    checked = true;
  }, "test.budget");
  simu.run_until(1.0);
  EXPECT_TRUE(checked);
}

// ---------------------------------------------------------------------------
// End-to-end fixtures: a small lossy/duplicating tree with budgets on.

struct TreeFixture {
  sim::Simulator simu;
  net::Network net;
  topo::BalancedTree tree;
  std::vector<net::NodeId> receivers;

  explicit TreeFixture(std::uint64_t seed, double loss, int depth = 2,
                       int fanout = 3)
      : simu(seed), net(simu) {
    net::LinkConfig link;
    link.loss_rate = loss;
    tree = topo::make_balanced_tree(net, depth, fanout, link);
    receivers.assign(tree.all.begin() + 1, tree.all.end());
    auto& z = net.zones();
    const net::ZoneId root = z.add_root();
    z.assign(tree.root, root);
    for (std::size_t i = 0; i < tree.levels[1].size(); ++i) {
      const net::ZoneId sub = z.add_zone(root);
      z.assign(tree.levels[1][i], sub);
      for (int leaf = 0; leaf < fanout; ++leaf) {
        z.assign(tree.levels[2][i * fanout + leaf], sub);
      }
    }
  }
};

/// Regression: entries aged out of a tiny dedup window must not let a
/// late-arriving duplicate resurrect a second application delivery. The
/// wire duplicates aggressively and the window holds only 4 uids, so
/// duplicates routinely outlive their dedup entry — the group/shard state
/// machine is the layer that must stay idempotent.
TEST(BudgetDedup, AgedOutEntriesCannotResurrectDuplicateDelivery) {
  TreeFixture f(913, /*loss=*/0.03);
  for (net::LinkId l = 0; l < f.net.link_count(); ++l) {
    f.net.conditioner(l).set_duplicate(0.8, 2);
    f.net.conditioner(l).set_reorder(0.3, 0.040);
  }
  std::ostringstream jos;
  stats::Journal journal(jos);
  rm::DeliveryLog log;
  Config cfg;
  cfg.scoping = true;
  cfg.journal = &journal;
  cfg.budget.dedup_entries = 4;
  Session s(f.net, f.tree.root, f.receivers, cfg, &log);
  s.start();
  const std::uint32_t kGroups = 6;
  s.send_stream(kGroups, 6.0);
  f.simu.run_until(120.0);

  std::uint64_t dup_rejects = 0;
  for (const auto& a : s.agents()) {
    EXPECT_LE(a->dedup_high_water(), 4u) << "node " << a->node();
    dup_rejects += a->duplicate_rejects();
  }
  // The tiny window still catches back-to-back duplicates...
  EXPECT_GT(dup_rejects, 0u);
  // ...and every receiver completed every group exactly once.
  for (net::NodeId r : f.receivers) {
    EXPECT_TRUE(log.complete(r, kGroups)) << "receiver " << r;
  }
  std::istringstream jis(jos.str());
  std::string error;
  const auto events = stats::read_journal(jis, &error);
  ASSERT_TRUE(events.has_value()) << error;
  std::map<std::pair<int, std::int64_t>, int> completions;
  for (const auto& ev : *events) {
    if (ev.ev == "group.complete") ++completions[{ev.node, ev.group}];
  }
  for (const auto& [key, count] : completions) {
    EXPECT_EQ(count, 1) << "node " << key.first << " group " << key.second
                        << " delivered more than once";
  }
}

/// Peer tables age deterministically at their cap and the session keeps
/// functioning: elections, beacons, and recovery all continue with only
/// the `peers_per_level` most recently heard peers retained.
TEST(BudgetPeers, PeerTablesStayAtCapAndSessionCompletes) {
  TreeFixture f(527, /*loss=*/0.08);
  rm::DeliveryLog log;
  Config cfg;
  cfg.scoping = true;
  cfg.budget.peers_per_level = 2;
  Session s(f.net, f.tree.root, f.receivers, cfg, &log);
  s.start();
  const std::uint32_t kGroups = 8;
  s.send_stream(kGroups, 6.0);
  f.simu.run_until(120.0);

  std::uint64_t shed = 0;
  for (const auto& a : s.agents()) {
    EXPECT_LE(a->session().peer_table_high_water(), 2u)
        << "node " << a->node();
    EXPECT_LE(a->session().bridge_table_high_water(), 2u)
        << "node " << a->node();
    shed += a->session().peers_shed();
  }
  EXPECT_GT(shed, 0u);  // 13 members per root zone: the cap must bite
  for (net::NodeId r : f.receivers) {
    EXPECT_TRUE(log.complete(r, kGroups)) << "receiver " << r;
  }
}

/// Repair-queue depth and send rate stay bounded under loss: deficits
/// beyond the cap coalesce, paced-out sends defer, and transfers still
/// complete.
TEST(BudgetRepairs, QueueDepthAndRateStayBounded) {
  TreeFixture f(308, /*loss=*/0.12);
  rm::DeliveryLog log;
  Config cfg;
  cfg.scoping = true;
  cfg.budget.repair_queue_depth = 2;
  cfg.budget.repair_rate_per_s = 80.0;
  Session s(f.net, f.tree.root, f.receivers, cfg, &log);
  s.start();
  const std::uint32_t kGroups = 10;
  s.send_stream(kGroups, 6.0);
  f.simu.run_until(180.0);

  std::uint64_t deferred = 0, coalesced = 0;
  for (const auto& a : s.agents()) {
    EXPECT_LE(a->transfer().pending_high_water(), 2) << "node " << a->node();
    const sim::Time spacing = a->budget().min_repair_spacing();
    if (spacing != sim::kTimeNever) {
      EXPECT_GE(spacing, 1.0 / 80.0 - 1e-9) << "node " << a->node();
    }
    deferred += a->transfer().repairs_deferred();
    coalesced += a->transfer().repairs_coalesced();
  }
  EXPECT_GT(deferred + coalesced, 0u);
  for (net::NodeId r : f.receivers) {
    EXPECT_TRUE(log.complete(r, kGroups)) << "receiver " << r;
  }
}

/// Same seed, budgets enabled, hostile wire: two runs must produce
/// byte-identical journals and metric exports. Shedding decisions are part
/// of the deterministic state machine, not a best-effort heuristic.
TEST(BudgetDeterminism, SameSeedRunsAreByteIdentical) {
  auto run = [] {
    TreeFixture f(777, /*loss=*/0.10);
    for (net::LinkId l = 0; l < f.net.link_count(); ++l) {
      f.net.conditioner(l).set_duplicate(0.5, 1);
    }
    std::ostringstream jos;
    stats::Journal journal(jos);
    stats::Metrics metrics;
    rm::DeliveryLog log;
    Config cfg;
    cfg.scoping = true;
    cfg.metrics = &metrics;
    cfg.journal = &journal;
    cfg.budget.state_bytes = 8 * 1024;
    cfg.budget.dedup_entries = 64;
    cfg.budget.peers_per_level = 2;
    cfg.budget.repair_queue_depth = 2;
    cfg.budget.repair_rate_per_s = 100.0;
    Session s(f.net, f.tree.root, f.receivers, cfg, &log);
    s.start();
    s.send_stream(8, 6.0);
    f.simu.run_until(150.0);
    std::ostringstream mos;
    metrics.write_totals_json(mos);
    return jos.str() + "\n---\n" + mos.str();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("shed."), std::string::npos)
      << "campaign never exercised a shed path";
}

// ---------------------------------------------------------------------------
// Exhaustion-plan grammar.

TEST(FaultPlanGrammar, ExhaustionVerbsRoundTrip) {
  const std::string text =
      "plan exhaust\n"
      "at 1.5 nack-storm 7 16 0.005\n"
      "at 2 flash-crowd 29 33 0.01\n"
      "at 3 bandwidth 0 1 1000000\n"
      "at 4 queue-limit 1 8 4\n"
      "at 9 queue-limit 1 8 -1\n";
  std::string error;
  const auto plan = fault::FaultPlan::parse(text, &error);
  ASSERT_TRUE(plan.has_value()) << error;
  ASSERT_EQ(plan->events.size(), 5u);
  EXPECT_EQ(plan->events[0].kind, fault::EventKind::kNackStorm);
  EXPECT_EQ(plan->events[0].from, 7);
  EXPECT_EQ(plan->events[0].copies, 16);
  EXPECT_DOUBLE_EQ(plan->events[0].jitter, 0.005);
  EXPECT_EQ(plan->events[1].kind, fault::EventKind::kFlashCrowd);
  EXPECT_EQ(plan->events[1].from, 29);
  EXPECT_EQ(plan->events[1].to, 33);
  EXPECT_EQ(plan->events[2].kind, fault::EventKind::kBandwidth);
  EXPECT_DOUBLE_EQ(plan->events[2].rate, 1e6);
  EXPECT_EQ(plan->events[3].kind, fault::EventKind::kQueueLimit);
  EXPECT_EQ(plan->events[3].copies, 4);
  EXPECT_EQ(plan->events[4].copies, -1);  // -1 = remove the bound

  // to_spec round-trips exactly.
  const auto again = fault::FaultPlan::parse(plan->to_spec(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->to_spec(), plan->to_spec());
}

TEST(FaultPlanGrammar, RejectsMalformedExhaustionStatements) {
  std::string error;
  EXPECT_FALSE(fault::FaultPlan::parse("at 1 nack-storm 7 0 0.005\n", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("at 1 nack-storm 7 4 -0.1\n", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("at 1 flash-crowd 9 5 0.01\n", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("at 1 bandwidth 0 1 0\n", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("at 1 bandwidth 0 1 -5\n", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("at 1 queue-limit 0 1 -2\n", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("at 1 nack-storm 7\n", &error));
  // The [0,1] probability check still guards the probabilistic verbs.
  EXPECT_FALSE(fault::FaultPlan::parse("at 1 loss 0 1 1.5\n", &error));
}

// ---------------------------------------------------------------------------
// Queue overflow observability: drops of *data* traffic journal too.

struct Probe final : net::MessageBase {};

/// Swallows deliveries so the queue-overflow fixture has a live endpoint.
class NullAgent final : public net::Agent {
 public:
  void on_receive(const net::Packet&) override {}
};

TEST(QueueOverflow, DataClassDropsAreJournaledAndCounted) {
  sim::Simulator simu(5);
  net::Network net(simu);
  stats::Metrics metrics;
  net.set_metrics(&metrics);
  std::ostringstream jos;
  stats::Journal journal(jos);
  net.set_journal(&journal);

  const net::NodeId a = net.add_node();
  const net::NodeId b = net.add_node();
  net::LinkConfig link;
  link.bandwidth_bps = 8e3;  // 1000 bytes -> 1 s serialization
  link.queue_limit_pkts = 2;
  net.add_duplex_link(a, b, link);
  const net::ChannelId ch = net.create_channel();
  NullAgent rx;
  net.attach(b, &rx);
  net.subscribe(ch, b);
  for (int i = 0; i < 10; ++i) {
    net.send(a, ch, net::TrafficClass::kData, 1000, std::make_shared<Probe>());
  }
  simu.run();

  const double dropped =
      metrics.counter("net.drops", {{"reason", "queue-full"}}).value();
  EXPECT_GT(dropped, 0.0);
  std::istringstream jis(jos.str());
  std::string error;
  const auto events = stats::read_journal(jis, &error);
  ASSERT_TRUE(events.has_value()) << error;
  int journaled = 0;
  for (const auto& ev : *events) {
    if (ev.ev != "net.dropped") continue;
    EXPECT_EQ(ev.attrs.at("reason"), "queue-full");
    EXPECT_EQ(ev.attrs.at("class"), "data");
    ++journaled;
  }
  EXPECT_EQ(static_cast<double>(journaled), dropped);
}

}  // namespace
}  // namespace sharq::sfq
