// Regression guards for the paper's headline qualitative results
// (EXPERIMENTS.md): if a change flips any of these orderings, the
// reproduction is broken even if every other test still passes.
//
// Runs use a reduced workload (384 packets instead of 1024) to keep the
// suite fast; the orderings are robust at this size.
#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "srm/session.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/figure10.hpp"

namespace sharq {
namespace {

struct Result {
  std::uint64_t nacks_sent = 0;
  std::uint64_t repairs_sent = 0;
  double nack_deliveries_per_rx = 0;
  double data_repair_per_rx = 0;
  double source_nacks = 0;
  int incomplete = 0;
};

constexpr std::uint32_t kPackets = 384;
constexpr double kUntil = 90.0;  // room for SRM's backoff tail

Result run_variant(const char* which) {
  sim::Simulator simu(424242);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  stats::TrafficRecorder rec(net.node_count(), 0.1);
  net.set_sink(&rec);
  rm::DeliveryLog log;
  Result r;

  auto collect = [&](std::uint64_t units) {
    for (net::NodeId rx : t.receivers) {
      r.nack_deliveries_per_rx +=
          rec.node_total(rx, net::TrafficClass::kNack);
      r.data_repair_per_rx += rec.node_total(rx, net::TrafficClass::kData) +
                              rec.node_total(rx, net::TrafficClass::kRepair);
      if (!log.complete(rx, units)) ++r.incomplete;
    }
    r.nack_deliveries_per_rx /= 112.0;
    r.data_repair_per_rx /= 112.0;
    r.source_nacks = rec.node_total(t.source, net::TrafficClass::kNack);
  };

  if (std::string(which) == "srm") {
    srm::Config cfg;
    srm::Session s(net, t.source, t.receivers, cfg, &log);
    s.start();
    s.send_stream(kPackets, 6.0);
    simu.run_until(kUntil);
    for (auto& a : s.agents()) {
      r.nacks_sent += a->requests_sent();
      r.repairs_sent += a->repairs_sent();
    }
    collect(kPackets);
    return r;
  }
  sfq::Config cfg;
  if (std::string(which) == "ecsrm") {
    cfg.scoping = false;
    cfg.injection = false;
    cfg.sender_only = true;
  }
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(kPackets / cfg.group_size, 6.0);
  simu.run_until(kUntil);
  for (auto& a : s.agents()) {
    r.nacks_sent += a->transfer().nacks_sent();
    r.repairs_sent += a->transfer().repairs_sent();
  }
  collect(kPackets / cfg.group_size);
  return r;
}

class PaperShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    srm_ = new Result(run_variant("srm"));
    ecsrm_ = new Result(run_variant("ecsrm"));
    sharqfec_ = new Result(run_variant("sharqfec"));
  }
  static void TearDownTestSuite() {
    delete srm_;
    delete ecsrm_;
    delete sharqfec_;
  }
  static Result* srm_;
  static Result* ecsrm_;
  static Result* sharqfec_;
};

Result* PaperShapes::srm_ = nullptr;
Result* PaperShapes::ecsrm_ = nullptr;
Result* PaperShapes::sharqfec_ = nullptr;

TEST_F(PaperShapes, EveryVariantDeliversEverything) {
  EXPECT_EQ(srm_->incomplete, 0);
  EXPECT_EQ(ecsrm_->incomplete, 0);
  EXPECT_EQ(sharqfec_->incomplete, 0);
}

TEST_F(PaperShapes, Fig14SrmCarriesFarMoreTrafficThanEcsrm) {
  EXPECT_GT(srm_->data_repair_per_rx, 1.5 * ecsrm_->data_repair_per_rx);
  EXPECT_GT(srm_->repairs_sent, 2 * ecsrm_->repairs_sent);
}

TEST_F(PaperShapes, Fig15SrmSendsFarMoreNacks) {
  EXPECT_GT(srm_->nacks_sent, 3 * ecsrm_->nacks_sent);
}

TEST_F(PaperShapes, Fig19SharqfecNackBurdenBelowEcsrm) {
  // Per-receiver NACK deliveries: the paper's suppression metric.
  EXPECT_LT(sharqfec_->nack_deliveries_per_rx,
            ecsrm_->nack_deliveries_per_rx);
}

TEST_F(PaperShapes, Fig21SourceSeesFarFewerNacksUnderScoping) {
  EXPECT_LT(3 * sharqfec_->source_nacks, ecsrm_->source_nacks);
}

TEST_F(PaperShapes, Fig18InjectionCostsNoMeaningfulBandwidth) {
  // Total per-receiver traffic within 25% of the flat hybrid despite the
  // preemptive parity (paper: injection does not increase bandwidth).
  EXPECT_LT(sharqfec_->data_repair_per_rx,
            1.25 * ecsrm_->data_repair_per_rx);
}

}  // namespace
}  // namespace sharq
