#include <gtest/gtest.h>

#include "fec/matrix.hpp"
#include "fec/reed_solomon.hpp"
#include "sim/time.hpp"

namespace sharq {
namespace {

TEST(TimeHelpers, MsConversions) {
  EXPECT_DOUBLE_EQ(sim::from_ms(250.0), 0.25);
  EXPECT_DOUBLE_EQ(sim::to_ms(0.25), 250.0);
  EXPECT_DOUBLE_EQ(sim::to_ms(sim::from_ms(123.456)), 123.456);
  EXPECT_LT(0.0, sim::kTimeInfinity);
  EXPECT_LT(sim::kTimeNever, 0.0);
}

TEST(MatrixReduce, ProducesIdentityOnSelectedColumns) {
  // Take 4 random independent rows of a Vandermonde and reduce so columns
  // {0,1,2,3} become the identity.
  fec::Matrix v = fec::Matrix::vandermonde(8, 4);
  fec::Matrix m = v.select_rows({1, 3, 5, 7});
  ASSERT_TRUE(m.reduce_to_identity_on({0, 1, 2, 3}));
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(m.at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST(MatrixReduce, WiderMatrixKeepsOtherColumnsConsistent) {
  // Augment a 3x3 invertible block with its image of a known vector; the
  // reduction must transform the extra column by the inverse.
  fec::Matrix a(3, 4);
  // Invertible 3x3 from Vandermonde + extra column = A * x with x = e0+e2.
  fec::Matrix v = fec::Matrix::vandermonde(3, 3);
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) a.at(r, c) = v.at(r, c);
    a.at(r, 3) = fec::GF256::add(v.at(r, 0), v.at(r, 2));
  }
  ASSERT_TRUE(a.reduce_to_identity_on({0, 1, 2}));
  // The extra column must now read x = (1, 0, 1).
  EXPECT_EQ(a.at(0, 3), 1);
  EXPECT_EQ(a.at(1, 3), 0);
  EXPECT_EQ(a.at(2, 3), 1);
}

TEST(MatrixReduce, DependentColumnsRejected) {
  fec::Matrix m(2, 3);
  // Columns 0 and 1 identical -> cannot form an identity on {0, 1}.
  m.at(0, 0) = m.at(0, 1) = 5;
  m.at(1, 0) = m.at(1, 1) = 9;
  m.at(0, 2) = 1;
  m.at(1, 2) = 2;
  EXPECT_FALSE(m.reduce_to_identity_on({0, 1}));
}

TEST(ReedSolomonApi, AccessorsConsistent) {
  fec::ReedSolomon rs(10, 20);
  EXPECT_EQ(rs.k(), 10);
  EXPECT_EQ(rs.max_parity(), 20);
  EXPECT_EQ(rs.max_shards(), 30);
  EXPECT_EQ(rs.generator().rows(), 30);
  EXPECT_EQ(rs.generator().cols(), 10);
  EXPECT_THROW(rs.encode_parity(5, {}), std::out_of_range);   // data index
  EXPECT_THROW(rs.encode_parity(30, {}), std::out_of_range);  // past end
}

TEST(ReedSolomonApi, MismatchedShardSizesRejected) {
  fec::ReedSolomon rs(2, 2);
  std::vector<std::vector<std::uint8_t>> data{{1, 2, 3}, {4, 5}};
  EXPECT_THROW(rs.encode_parity(2, data), std::invalid_argument);
  std::vector<fec::ReedSolomon::Shard> shards{{0, {1, 2, 3}}, {1, {4, 5}}};
  EXPECT_THROW(rs.decode(shards), std::invalid_argument);
}

}  // namespace
}  // namespace sharq
