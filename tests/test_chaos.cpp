// Fault-injection tests: the scripted side of the chaos soak
// (tools/chaos_sim), pinned small enough to assert exact protocol
// behaviour. Covers the FaultPlan spec language, Injector semantics,
// tolerance of each link pathology (duplication, corruption, reordering),
// ZCR death -> re-election, and regression scenarios for the protocol
// bugs the randomized soak originally caught.
#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"

namespace sharq::sfq {
namespace {

/// source -- hub -- {relay, a, b}; zone = {hub, relay, a, b}, relay is
/// the static ZCR. The hub is a pure forwarder (no agent), so the zone
/// stays connected when any one member — including the ZCR — dies. The
/// hub must sit INSIDE the zone: scoped channels prune any forwarding
/// path that leaves the scope zone, so a star zone whose center is
/// outside would never deliver zone-local traffic at all.
struct HubZone {
  sim::Simulator simu{17};
  net::Network net{simu};
  net::NodeId source, hub, relay, a, b;
  net::ZoneId root, zone;

  HubZone() {
    source = net.add_node();
    hub = net.add_node();
    relay = net.add_node();
    a = net.add_node();
    b = net.add_node();
    net::LinkConfig up;
    up.delay = 0.020;
    net.add_duplex_link(source, hub, up);
    net::LinkConfig down;
    down.delay = 0.010;
    for (net::NodeId n : {relay, a, b}) net.add_duplex_link(hub, n, down);
    root = net.zones().add_root();
    zone = net.zones().add_zone(root);
    net.zones().assign(source, root);
    for (net::NodeId n : {hub, relay, a, b}) net.zones().assign(n, zone);
  }
};

// --- FaultPlan spec language -------------------------------------------------

TEST(FaultPlan, SpecRoundTripsExactly) {
  fault::FaultPlan p;
  p.name = "roundtrip";
  p.events.push_back({5.0, fault::EventKind::kLossRate, 1, 3, 0.25, 0.0, 1});
  p.events.push_back({2.5, fault::EventKind::kPartition, 1, 4, 0.0, 0.0, 1});
  p.events.push_back(
      {8.0, fault::EventKind::kReorderRate, 1, 3, 0.5, 0.035, 1});
  p.events.push_back(
      {9.0, fault::EventKind::kDuplicateRate, 1, 3, 0.1, 0.0, 2});
  p.events.push_back({12.0, fault::EventKind::kNodeKill, 4, net::kNoNode,
                      0.0, 0.0, 1});
  p.events.push_back({20.0, fault::EventKind::kNodeRestart, 4, net::kNoNode,
                      0.0, 0.0, 1});
  p.sort();
  ASSERT_EQ(p.events.front().kind, fault::EventKind::kPartition);

  const std::string spec = p.to_spec();
  std::string error;
  const auto back = fault::FaultPlan::parse(spec, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->name, "roundtrip");
  EXPECT_EQ(back->to_spec(), spec);
}

TEST(FaultPlan, RejectsMalformedStatements) {
  std::string error;
  EXPECT_FALSE(fault::FaultPlan::parse("at 1.0 melt 3 4", &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  // Out-of-range rate, negative time, trailing garbage: each kills the
  // whole plan — a half-parsed chaos scenario would lie about coverage.
  EXPECT_FALSE(fault::FaultPlan::parse("at 1.0 loss 3 4 1.5", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("at -2 kill 3", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("at 1.0 kill 3 extra", &error));
  EXPECT_FALSE(fault::FaultPlan::parse("plan", &error));
}

TEST(FaultPlan, InjectorSkipsUnknownLinksAndRedundantChurn) {
  HubZone f;
  fault::FaultPlan p;
  // source->a is not a link; killing an already-dead node and restarting
  // a live one are also no-ops. All must count as skipped, not abort.
  p.events.push_back({1.0, fault::EventKind::kLossRate, f.source, f.a, 0.5,
                      0.0, 1});
  p.events.push_back({1.5, fault::EventKind::kNodeRestart, f.a, net::kNoNode,
                      0.0, 0.0, 1});
  p.events.push_back({2.0, fault::EventKind::kNodeKill, f.a, net::kNoNode,
                      0.0, 0.0, 1});
  p.events.push_back({2.5, fault::EventKind::kNodeKill, f.a, net::kNoNode,
                      0.0, 0.0, 1});
  int kills = 0;
  fault::Injector inject(f.net,
                         {.kill = [&](net::NodeId) { ++kills; },
                          .restart = [](net::NodeId) {}});
  inject.schedule(p);
  f.simu.run_until(5.0);
  EXPECT_EQ(kills, 1);
  EXPECT_EQ(inject.applied_events(), 1u);
  EXPECT_EQ(inject.skipped_events(), 3u);
  EXPECT_FALSE(f.net.node_up(f.a));
}

// --- link pathologies --------------------------------------------------------

TEST(ChaosConditioning, DuplicateDeliveryIsIdempotent) {
  HubZone f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.static_zcrs[f.zone] = f.relay;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  // Every packet into the zone arrives three times.
  const net::LinkId l = f.net.find_link(f.hub, f.a);
  ASSERT_NE(l, net::kNoLink);
  f.net.conditioner(l).set_duplicate(1.0, 2);
  s.send_stream(10, 6.0);
  f.simu.run_until(40.0);

  EXPECT_TRUE(s.all_complete(10));
  auto& agent = s.agent_for(f.a);
  // The duplicates were detected and dropped at the agent boundary...
  EXPECT_GT(agent.duplicate_rejects(), 100u);
  // ...so they neither created protocol work (a lossless stream stays
  // NACK-free) nor distorted completion accounting.
  EXPECT_EQ(agent.transfer().nacks_sent(), 0u);
  EXPECT_EQ(agent.transfer().groups_completed(), 10u);
}

TEST(ChaosConditioning, CorruptionIsRejectedAndRepaired) {
  HubZone f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.static_zcrs[f.zone] = f.relay;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  const net::LinkId l = f.net.find_link(f.hub, f.a);
  f.net.conditioner(l).set_corrupt_rate(0.20);
  s.send_stream(10, 6.0);
  f.simu.run_until(60.0);

  // Corrupted shards must act exactly like losses: rejected on arrival
  // (never decoded into the group) and recovered through repairs.
  EXPECT_TRUE(s.all_complete(10));
  EXPECT_GT(s.agent_for(f.a).corrupt_rejects(), 10u);
  EXPECT_EQ(s.agent_for(f.a).transfer().malformed_rejects(), 0u);
}

TEST(ChaosConditioning, ReorderingIsToleratedWithoutSpuriousNacks) {
  HubZone f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.static_zcrs[f.zone] = f.relay;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  // Half of all packets pick up to 30 ms of extra delay — greater than
  // the 10 ms inter-packet interval, so arrival order scrambles freely.
  for (net::NodeId n : {f.relay, f.a, f.b}) {
    f.net.conditioner(f.net.find_link(f.hub, n)).set_reorder(0.5, 0.030);
  }
  s.send_stream(10, 6.0);
  f.simu.run_until(60.0);

  EXPECT_TRUE(s.all_complete(10));
  // Nothing was lost, so late shards must be absorbed by the loss
  // detection phase, not NACKed: allow only stragglers past a group
  // boundary, never a per-group NACK storm.
  std::uint64_t nacks = 0;
  for (const auto& agent : s.agents()) {
    nacks += agent->transfer().nacks_sent();
  }
  EXPECT_LE(nacks, 6u);
}

// --- node churn: ZCR death -> expiry -> re-election -------------------------

TEST(ChaosChurn, ZcrDeathTriggersReelectionAndRecovery) {
  HubZone f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.static_zcrs[f.zone] = f.relay;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(20, 6.0);  // ends ~9.2 s

  // Scripted chaos: the zone's dedicated repairer dies mid-transfer.
  const auto plan = fault::FaultPlan::parse("plan zcr-death\nat 7.0 kill 2\n");
  ASSERT_TRUE(plan.has_value());
  fault::Injector inject(
      f.net, {.kill = [&](net::NodeId n) { s.remove_receiver(n); },
              .restart = [&](net::NodeId n) { s.add_receiver(n); }});
  inject.schedule(*plan);
  f.simu.run_until(60.0);

  // The survivors finished the transfer without their ZCR...
  EXPECT_TRUE(log.complete(f.a, 20));
  EXPECT_TRUE(log.complete(f.b, 20));
  // ...the watchdog replaced the dead static ZCR with a live member...
  const net::NodeId new_zcr = s.agent_for(f.a).session().zcr_of(f.zone);
  EXPECT_NE(new_zcr, f.relay);
  EXPECT_TRUE(new_zcr == f.a || new_zcr == f.b) << "zcr=" << new_zcr;
  // ...and both survivors converged on the same view.
  EXPECT_EQ(new_zcr, s.agent_for(f.b).session().zcr_of(f.zone));
  // The dead peer's RTT state was expired, not kept forever (it would
  // otherwise pollute distance estimates for the rest of the session).
  EXPECT_GT(s.agent_for(f.a).session().peers_expired() +
                s.agent_for(f.b).session().peers_expired(),
            0u);
}

// --- regressions for bugs found by the randomized soak ----------------------

TEST(SoakRegression, StarvedReceiverCompletesAfterSliceExhaustion) {
  // Found by chaos_sim: a receiver that missed the entire first delivery
  // pass (outage spanning the stream) needs more distinct shards than any
  // single repairer burst. next_parity_index used to pin at the top of an
  // exhausted parity slice, so repairers resent one duplicate shard
  // forever and the receiver could never finish; useless duplicates also
  // reset its NACK backoff, sustaining the storm. With a deliberately tiny
  // parity space this reproduced deterministically.
  HubZone f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.static_zcrs[f.zone] = f.relay;
  cfg.max_parity = 20;      // slice per level: 10 — less than one group
  cfg.max_backoff_stage = 5;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(6, 6.0);

  // `a` is unreachable for the whole stream and first repair exchange.
  const auto plan = fault::FaultPlan::parse(
      "plan outage\n"
      "at 5.0 partition 1 3\n"
      "at 12.0 heal 1 3\n");
  ASSERT_TRUE(plan.has_value());
  fault::Injector inject(f.net, {.kill = [](net::NodeId) {},
                                 .restart = [](net::NodeId) {}});
  inject.schedule(*plan);
  f.simu.run_until(90.0);

  EXPECT_TRUE(log.complete(f.a, 6)) << "completed only "
                                    << log.completed_count(f.a);
  // Bounded effort: recovery must be a handful of NACK rounds per group,
  // not the livelocked storm the pinned cursor produced.
  EXPECT_LT(s.agent_for(f.a).transfer().nacks_sent(), 200u);
}

TEST(SoakRegression, PostOutageRepairsStayZoneLocal) {
  // Found by chaos_sim: scope escalation was one-way, so after an outage
  // a receiver's NACKs stayed at root scope forever and the source served
  // catch-up traffic the zone could supply (~100x repair amplification
  // across a large session). Repairs must de-escalate the scope back to
  // the level that actually served them.
  HubZone f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.static_zcrs[f.zone] = f.relay;
  cfg.max_backoff_stage = 5;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(20, 6.0);

  const auto plan = fault::FaultPlan::parse(
      "plan outage\n"
      "at 5.0 partition 1 3\n"
      "at 12.0 heal 1 3\n");
  ASSERT_TRUE(plan.has_value());
  fault::Injector inject(f.net, {.kill = [](net::NodeId) {},
                                 .restart = [](net::NodeId) {}});
  inject.schedule(*plan);
  f.simu.run_until(90.0);

  EXPECT_TRUE(log.complete(f.a, 20));
  const std::uint64_t src = s.source_agent().transfer().repairs_sent();
  std::uint64_t zone_repairs = 0;
  for (net::NodeId n : {f.relay, f.b}) {
    zone_repairs += s.agent_for(n).transfer().repairs_sent();
  }
  EXPECT_GT(zone_repairs, 0u);
  EXPECT_LT(src, zone_repairs);
}

TEST(SoakRegression, UsurpedZcrReconvergesAfterPartitionHeals) {
  // Found by chaos_sim: when the ZCR itself is partitioned away long
  // enough for the zone to elect a replacement, the heal used to leave a
  // permanent split-brain — takeover announcements are one-shot, so the
  // returning ZCR never heard the election, kept advertising the role,
  // and (with no measured parent distance, or one corrupted by refreshing
  // from observed challenge rounds) neither claimant could ever win.
  // Session messages now resolve rival claims with the election ordering.
  HubZone f;
  rm::DeliveryLog log;
  Config cfg;
  cfg.static_zcrs[f.zone] = f.relay;
  Session s(f.net, f.source, {f.relay, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(20, 6.0);

  // The ZCR drops off the network across the whole stream and well past
  // the member watchdog period, so the zone must re-elect...
  const auto plan = fault::FaultPlan::parse(
      "plan zcr-outage\n"
      "at 5.0 partition 1 2\n"
      "at 40.0 heal 1 2\n");
  ASSERT_TRUE(plan.has_value());
  fault::Injector inject(f.net, {.kill = [](net::NodeId) {},
                                 .restart = [](net::NodeId) {}});
  inject.schedule(*plan);

  f.simu.run_until(39.0);
  const net::NodeId usurper = s.agent_for(f.a).session().zcr_of(f.zone);
  ASSERT_NE(usurper, f.relay);
  ASSERT_TRUE(usurper == f.a || usurper == f.b) << "zcr=" << usurper;

  f.simu.run_until(90.0);
  // ...and after the heal every member, including the returning static
  // ZCR, converges back on the single deterministic winner.
  EXPECT_EQ(s.agent_for(f.relay).session().zcr_of(f.zone), f.relay);
  EXPECT_EQ(s.agent_for(f.a).session().zcr_of(f.zone), f.relay);
  EXPECT_EQ(s.agent_for(f.b).session().zcr_of(f.zone), f.relay);
  // The returning ZCR also caught up on the stream it missed entirely.
  EXPECT_TRUE(log.complete(f.relay, 20))
      << "completed only " << log.completed_count(f.relay);
  EXPECT_TRUE(log.complete(f.a, 20));
  EXPECT_TRUE(log.complete(f.b, 20));
}

}  // namespace
}  // namespace sharq::sfq
