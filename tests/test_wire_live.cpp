// Integration: every message a live SHARQFEC run emits must survive a
// wire encode/decode round trip with its semantics intact. This catches
// fields added to a message struct but forgotten in the codec.
#include <gtest/gtest.h>

#include "sharqfec/protocol.hpp"
#include "sharqfec/wire.hpp"
#include "sim/simulator.hpp"
#include "topo/figure10.hpp"

namespace sharq::sfq {
namespace {

class WireCheckSink final : public net::TrafficSink {
 public:
  void on_deliver(sim::Time, net::NodeId, const net::Packet& p) override {
    check(p);
  }

  std::uint64_t checked = 0;
  std::uint64_t by_type[8] = {};

 private:
  void check(const net::Packet& p) {
    if (const auto* m = p.as<DataMsg>()) {
      roundtrip(*m, wire::MsgType::kData, [&](const DataMsg& d) {
        EXPECT_EQ(d.group, m->group);
        EXPECT_EQ(d.index, m->index);
        EXPECT_EQ(d.initial_shards, m->initial_shards);
        EXPECT_EQ(d.groups_total, m->groups_total);
      });
    } else if (const auto* m2 = p.as<RepairMsg>()) {
      roundtrip(*m2, wire::MsgType::kRepair, [&](const RepairMsg& d) {
        EXPECT_EQ(d.index, m2->index);
        EXPECT_EQ(d.zone, m2->zone);
        EXPECT_EQ(d.preemptive, m2->preemptive);
        EXPECT_EQ(d.hints.size(), m2->hints.size());
      });
    } else if (const auto* m3 = p.as<NackMsg>()) {
      roundtrip(*m3, wire::MsgType::kNack, [&](const NackMsg& d) {
        EXPECT_EQ(d.llc, m3->llc);
        EXPECT_EQ(d.needed, m3->needed);
        EXPECT_EQ(d.sender, m3->sender);
        ASSERT_EQ(d.hints.size(), m3->hints.size());
        for (std::size_t i = 0; i < d.hints.size(); ++i) {
          EXPECT_EQ(d.hints[i].zcr, m3->hints[i].zcr);
          EXPECT_DOUBLE_EQ(d.hints[i].dist, m3->hints[i].dist);
        }
      });
    } else if (const auto* m4 = p.as<SessionMsg>()) {
      roundtrip(*m4, wire::MsgType::kSession, [&](const SessionMsg& d) {
        EXPECT_EQ(d.sender, m4->sender);
        EXPECT_EQ(d.zcr, m4->zcr);
        EXPECT_EQ(d.entries.size(), m4->entries.size());
        EXPECT_DOUBLE_EQ(d.ts, m4->ts);
      });
    } else if (const auto* m5 = p.as<ZcrChallengeMsg>()) {
      roundtrip(*m5, wire::MsgType::kZcrChallenge,
                [&](const ZcrChallengeMsg& d) {
                  EXPECT_EQ(d.challenge_id, m5->challenge_id);
                });
    } else if (const auto* m6 = p.as<ZcrResponseMsg>()) {
      roundtrip(*m6, wire::MsgType::kZcrResponse,
                [&](const ZcrResponseMsg& d) {
                  EXPECT_EQ(d.challenge_id, m6->challenge_id);
                });
    } else if (const auto* m7 = p.as<ZcrTakeoverMsg>()) {
      roundtrip(*m7, wire::MsgType::kZcrTakeover,
                [&](const ZcrTakeoverMsg& d) {
                  EXPECT_EQ(d.new_zcr, m7->new_zcr);
                  EXPECT_DOUBLE_EQ(d.dist_to_parent, m7->dist_to_parent);
                });
    }
  }

  template <typename T, typename Check>
  void roundtrip(const T& msg, wire::MsgType type, Check&& verify) {
    const auto buf = wire::encode(msg);
    ASSERT_EQ(wire::peek_type(buf.data(), buf.size()), type);
    auto any = wire::decode(buf);
    ASSERT_TRUE(any.has_value());
    const T* decoded = std::get_if<T>(&*any);
    ASSERT_NE(decoded, nullptr);
    verify(*decoded);
    ++checked;
    ++by_type[static_cast<int>(type)];
  }
};

TEST(WireLive, EveryLiveMessageRoundTrips) {
  sim::Simulator simu(515);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  WireCheckSink sink;
  net.set_sink(&sink);
  Config cfg;
  Session s(net, t.source, t.receivers, cfg);
  s.start();
  s.send_stream(8, 6.0);
  simu.run_until(25.0);
  EXPECT_GT(sink.checked, 10000u);
  // Every message family must actually have been exercised.
  for (wire::MsgType type :
       {wire::MsgType::kData, wire::MsgType::kRepair, wire::MsgType::kNack,
        wire::MsgType::kSession, wire::MsgType::kZcrChallenge,
        wire::MsgType::kZcrResponse, wire::MsgType::kZcrTakeover}) {
    EXPECT_GT(sink.by_type[static_cast<int>(type)], 0u)
        << "type " << static_cast<int>(type) << " never seen live";
  }
}

}  // namespace
}  // namespace sharq::sfq
