#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>

#include "fec/gf256.hpp"
#include "fec/group_codec.hpp"
#include "fec/matrix.hpp"
#include "fec/reed_solomon.hpp"

namespace sharq::fec {
namespace {

// ---------- GF(256) ----------------------------------------------------------

TEST(GF256, AddIsXor) {
  EXPECT_EQ(GF256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(GF256::add(7, 7), 0);
}

TEST(GF256, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(GF256::mul(static_cast<GF256::Elem>(a), 1), a);
    EXPECT_EQ(GF256::mul(static_cast<GF256::Elem>(a), 0), 0);
  }
}

TEST(GF256, MulCommutative) {
  for (int a = 1; a < 256; a += 7) {
    for (int b = 1; b < 256; b += 11) {
      EXPECT_EQ(GF256::mul(a, b), GF256::mul(b, a));
    }
  }
}

TEST(GF256, MulAssociative) {
  for (int a = 1; a < 256; a += 17) {
    for (int b = 1; b < 256; b += 23) {
      for (int c = 1; c < 256; c += 29) {
        EXPECT_EQ(GF256::mul(GF256::mul(a, b), c),
                  GF256::mul(a, GF256::mul(b, c)));
      }
    }
  }
}

TEST(GF256, DistributesOverAdd) {
  for (int a = 1; a < 256; a += 13) {
    for (int b = 0; b < 256; b += 19) {
      for (int c = 0; c < 256; c += 31) {
        EXPECT_EQ(GF256::mul(a, GF256::add(b, c)),
                  GF256::add(GF256::mul(a, b), GF256::mul(a, c)));
      }
    }
  }
}

TEST(GF256, InverseRoundTrips) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = GF256::inverse(static_cast<GF256::Elem>(a));
    EXPECT_EQ(GF256::mul(static_cast<GF256::Elem>(a), inv), 1) << "a=" << a;
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  for (int a = 0; a < 256; a += 5) {
    for (int b = 1; b < 256; b += 7) {
      const auto q = GF256::div(a, b);
      EXPECT_EQ(GF256::mul(q, b), a);
    }
  }
}

TEST(GF256, PowMatchesRepeatedMul) {
  for (int a = 1; a < 256; a += 37) {
    GF256::Elem acc = 1;
    for (unsigned n = 0; n < 16; ++n) {
      EXPECT_EQ(GF256::pow(static_cast<GF256::Elem>(a), n), acc);
      acc = GF256::mul(acc, static_cast<GF256::Elem>(a));
    }
  }
}

TEST(GF256, AlphaHasFullOrder) {
  // alpha = 2 generates the multiplicative group: powers repeat at 255.
  std::vector<bool> seen(256, false);
  for (unsigned i = 0; i < 255; ++i) {
    const auto v = GF256::alpha_pow(i);
    EXPECT_FALSE(seen[v]) << "repeat at power " << i;
    seen[v] = true;
  }
}

TEST(GF256, MulAddMatchesScalarLoop) {
  std::vector<std::uint8_t> dst(257), src(257), expect(257);
  std::mt19937 rng(1);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = rng() & 0xff;
    src[i] = rng() & 0xff;
  }
  const GF256::Elem c = 0xA7;
  for (std::size_t i = 0; i < dst.size(); ++i) {
    expect[i] = GF256::add(dst[i], GF256::mul(c, src[i]));
  }
  GF256::mul_add(dst.data(), src.data(), c, dst.size());
  EXPECT_EQ(dst, expect);
}

TEST(GF256, ScaleByZeroAndOne) {
  std::vector<std::uint8_t> v{1, 2, 3, 255};
  auto w = v;
  GF256::scale(w.data(), 1, w.size());
  EXPECT_EQ(w, v);
  GF256::scale(w.data(), 0, w.size());
  EXPECT_EQ(w, (std::vector<std::uint8_t>{0, 0, 0, 0}));
}

// ---------- Matrix ------------------------------------------------------------

TEST(Matrix, IdentityMultiplication) {
  Matrix id = Matrix::identity(5);
  Matrix v = Matrix::vandermonde(5, 5);
  EXPECT_EQ(id.multiply(v), v);
  EXPECT_EQ(v.multiply(id), v);
}

TEST(Matrix, VandermondeTopRowAllOnes) {
  Matrix v = Matrix::vandermonde(6, 4);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(v.at(0, c), 1);
}

TEST(Matrix, InvertRoundTrip) {
  Matrix v = Matrix::vandermonde(8, 8);
  Matrix inv = v;
  ASSERT_TRUE(inv.invert());
  EXPECT_EQ(v.multiply(inv), Matrix::identity(8));
}

TEST(Matrix, SingularDetected) {
  Matrix m(3, 3);
  // Two identical rows.
  for (int c = 0; c < 3; ++c) {
    m.at(0, c) = static_cast<GF256::Elem>(c + 1);
    m.at(1, c) = static_cast<GF256::Elem>(c + 1);
    m.at(2, c) = static_cast<GF256::Elem>(2 * c + 1);
  }
  EXPECT_FALSE(m.invert());
}

TEST(Matrix, SelectRows) {
  Matrix v = Matrix::vandermonde(6, 3);
  Matrix s = v.select_rows({5, 0, 2});
  EXPECT_EQ(s.rows(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(s.at(0, c), v.at(5, c));
    EXPECT_EQ(s.at(1, c), v.at(0, c));
    EXPECT_EQ(s.at(2, c), v.at(2, c));
  }
}

TEST(Matrix, AnyKRowsOfVandermondeInvertible) {
  Matrix v = Matrix::vandermonde(20, 5);
  std::mt19937 rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<int> rows(20);
    std::iota(rows.begin(), rows.end(), 0);
    std::shuffle(rows.begin(), rows.end(), rng);
    rows.resize(5);
    Matrix sub = v.select_rows(rows);
    EXPECT_TRUE(sub.invert()) << "trial " << trial;
  }
}

// ---------- Reed-Solomon -------------------------------------------------------

std::vector<std::vector<std::uint8_t>> random_shards(int k, int size,
                                                     unsigned seed) {
  std::mt19937 rng(seed);
  std::vector<std::vector<std::uint8_t>> out(k);
  for (auto& s : out) {
    s.resize(size);
    for (auto& b : s) b = rng() & 0xff;
  }
  return out;
}

TEST(ReedSolomon, SystematicDataRowsAreIdentity) {
  ReedSolomon rs(8, 8);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(rs.generator().at(r, c), r == c ? 1 : 0);
    }
  }
}

TEST(ReedSolomon, RejectsBadParams) {
  EXPECT_THROW(ReedSolomon(0, 5), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(200, 100), std::invalid_argument);
  EXPECT_THROW(ReedSolomon(-1, 1), std::invalid_argument);
}

TEST(ReedSolomon, DecodeFromAllData) {
  ReedSolomon rs(4, 4);
  auto data = random_shards(4, 64, 11);
  std::vector<ReedSolomon::Shard> got;
  for (int i = 0; i < 4; ++i) got.push_back({i, data[i]});
  auto dec = rs.decode(got);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, data);
}

TEST(ReedSolomon, DecodeFromAllParity) {
  ReedSolomon rs(4, 4);
  auto data = random_shards(4, 64, 13);
  std::vector<ReedSolomon::Shard> got;
  for (int i = 4; i < 8; ++i) got.push_back({i, rs.encode_parity(i, data)});
  auto dec = rs.decode(got);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, data);
}

TEST(ReedSolomon, InsufficientShardsFails) {
  ReedSolomon rs(4, 4);
  auto data = random_shards(4, 16, 17);
  std::vector<ReedSolomon::Shard> got{{0, data[0]}, {1, data[1]},
                                      {2, data[2]}};
  EXPECT_FALSE(rs.decode(got).has_value());
}

TEST(ReedSolomon, DuplicatesIgnored) {
  ReedSolomon rs(3, 3);
  auto data = random_shards(3, 16, 19);
  std::vector<ReedSolomon::Shard> got{
      {0, data[0]}, {0, data[0]}, {0, data[0]}, {1, data[1]}};
  EXPECT_FALSE(rs.decode(got).has_value());
  got.push_back({4, rs.encode_parity(4, data)});
  auto dec = rs.decode(got);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, data);
}

struct RsParam {
  int k;
  int parity;
  int erase;  // how many data shards to erase
};

class RsRecovery : public ::testing::TestWithParam<RsParam> {};

TEST_P(RsRecovery, AnyKOfNRecovers) {
  const auto [k, parity, erase] = GetParam();
  ASSERT_LE(erase, parity);
  ReedSolomon rs(k, parity);
  auto data = random_shards(k, 100, 23 + k * 7 + parity);
  std::mt19937 rng(99 + erase);
  // Erase `erase` random data shards; replace with random parity shards.
  std::vector<int> data_ids(k);
  std::iota(data_ids.begin(), data_ids.end(), 0);
  std::shuffle(data_ids.begin(), data_ids.end(), rng);
  std::vector<int> parity_ids(parity);
  std::iota(parity_ids.begin(), parity_ids.end(), k);
  std::shuffle(parity_ids.begin(), parity_ids.end(), rng);

  std::vector<ReedSolomon::Shard> got;
  for (int i = erase; i < k; ++i) got.push_back({data_ids[i], data[data_ids[i]]});
  for (int i = 0; i < erase; ++i) {
    got.push_back({parity_ids[i], rs.encode_parity(parity_ids[i], data)});
  }
  std::shuffle(got.begin(), got.end(), rng);
  auto dec = rs.decode(got);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, data);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RsRecovery,
    ::testing::Values(RsParam{1, 1, 1}, RsParam{2, 2, 1}, RsParam{2, 2, 2},
                      RsParam{4, 4, 3}, RsParam{8, 8, 8}, RsParam{16, 16, 5},
                      RsParam{16, 16, 16}, RsParam{16, 128, 16},
                      RsParam{32, 16, 16}, RsParam{64, 64, 64},
                      RsParam{100, 100, 99}, RsParam{16, 239, 16}));

// ---------- Group codec ---------------------------------------------------------

TEST(GroupCodec, EncoderRoundTripThroughParityOnly) {
  auto codec = std::make_shared<ReedSolomon>(5, 10);
  auto data = random_shards(5, 48, 31);
  GroupEncoder enc(codec, data);
  GroupDecoder dec(codec);
  EXPECT_EQ(dec.deficit(), 5);
  for (int i = 5; i < 10; ++i) {
    EXPECT_TRUE(dec.add(i, enc.shard(i)));
  }
  EXPECT_TRUE(dec.complete());
  EXPECT_EQ(dec.deficit(), 0);
  auto out = dec.reconstruct();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(GroupCodec, DuplicateAddRejected) {
  auto codec = std::make_shared<ReedSolomon>(4, 4);
  auto data = random_shards(4, 8, 37);
  GroupEncoder enc(codec, data);
  GroupDecoder dec(codec);
  EXPECT_TRUE(dec.add(2, enc.shard(2)));
  EXPECT_FALSE(dec.add(2, enc.shard(2)));
  EXPECT_EQ(dec.distinct(), 1);
  EXPECT_EQ(dec.distinct_data(), 1);
}

TEST(GroupCodec, OutOfRangeIndexRejected) {
  auto codec = std::make_shared<ReedSolomon>(4, 4);
  GroupDecoder dec(codec);
  EXPECT_FALSE(dec.add(-1, {}));
  EXPECT_FALSE(dec.add(8, {}));
  EXPECT_FALSE(dec.has(100));
}

TEST(GroupCodec, MixedDataAndParity) {
  auto codec = std::make_shared<ReedSolomon>(6, 6);
  auto data = random_shards(6, 32, 41);
  GroupEncoder enc(codec, data);
  GroupDecoder dec(codec);
  dec.add(0, enc.shard(0));
  dec.add(3, enc.shard(3));
  dec.add(7, enc.shard(7));
  dec.add(9, enc.shard(9));
  dec.add(10, enc.shard(10));
  EXPECT_FALSE(dec.complete());
  dec.add(11, enc.shard(11));
  ASSERT_TRUE(dec.complete());
  auto out = dec.reconstruct();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, data);
}

TEST(GroupCodec, EncoderValidatesShardCount) {
  auto codec = std::make_shared<ReedSolomon>(4, 4);
  auto data = random_shards(3, 8, 43);
  EXPECT_THROW(GroupEncoder(codec, data), std::invalid_argument);
}

}  // namespace
}  // namespace sharq::fec
