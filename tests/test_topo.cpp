#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topo/figure10.hpp"
#include "topo/national.hpp"
#include "topo/shapes.hpp"

namespace sharq::topo {
namespace {

struct Fixture {
  sim::Simulator simu{1};
  net::Network net{simu};
};

TEST(Shapes, ChainConnectivity) {
  Fixture f;
  Chain c = make_chain(f.net, 5, net::LinkConfig{});
  EXPECT_EQ(c.nodes.size(), 5u);
  EXPECT_NEAR(f.net.path_delay(c.nodes[0], c.nodes[4]), 0.040, 1e-9);
}

TEST(Shapes, ChainWithCustomDelays) {
  Fixture f;
  Chain c = make_chain(f.net, {0.010, 0.020, 0.040});
  EXPECT_EQ(c.nodes.size(), 4u);
  EXPECT_NEAR(f.net.path_delay(c.nodes[0], c.nodes[3]), 0.070, 1e-9);
}

TEST(Shapes, StarDelays) {
  Fixture f;
  Star s = make_star(f.net, {0.010, 0.030});
  EXPECT_NEAR(f.net.path_delay(s.leaves[0], s.leaves[1]), 0.040, 1e-9);
}

TEST(Shapes, BalancedTreeSizes) {
  Fixture f;
  BalancedTree t = make_balanced_tree(f.net, 3, 2, net::LinkConfig{});
  EXPECT_EQ(t.levels.size(), 4u);
  EXPECT_EQ(t.leaves.size(), 8u);
  EXPECT_EQ(t.all.size(), 15u);
  EXPECT_NEAR(f.net.path_delay(t.root, t.leaves[0]), 0.030, 1e-9);
}

TEST(Figure1Tree, ReproducesPaperNumbers) {
  Fixture f;
  ExampleTree t = make_figure1_tree(f.net);
  // P(all receivers get a packet) = product over all links of (1 - loss).
  double p_all = 1.0;
  for (net::NodeId r : t.receivers) {
    p_all *= 1.0 - f.net.path_loss(t.source, r);
  }
  // Dividing out shared relay links double-counts; compute over links
  // directly instead.
  p_all = 1.0;
  for (net::LinkId l = 0; l < f.net.link_count(); ++l) {
    if (f.net.link_from(l) < f.net.link_to(l)) {  // one direction only
      p_all *= 1.0 - f.net.link_loss_rate(l);
    }
  }
  EXPECT_NEAR(p_all, 0.270, 0.001);  // paper: 27.0%

  const double worst = f.net.path_loss(t.source, t.worst_receiver);
  EXPECT_NEAR(worst, 0.0973, 0.0005);  // paper: 9.73%
  for (net::NodeId r : t.receivers) {
    EXPECT_LE(f.net.path_loss(t.source, r), worst + 1e-12);
  }
}

TEST(Figure10, StructureMatchesPaperNumbering) {
  Fixture f;
  Figure10 t = make_figure10(f.net);
  EXPECT_EQ(t.source, 0);
  EXPECT_EQ(f.net.node_count(), 113);
  EXPECT_EQ(t.mesh.front(), 1);
  EXPECT_EQ(t.mesh.back(), 7);
  EXPECT_EQ(t.middles.front(), 8);
  EXPECT_EQ(t.middles.back(), 28);
  EXPECT_EQ(t.leaves.front(), 29);
  EXPECT_EQ(t.leaves.back(), 112);
  EXPECT_EQ(t.receivers.size(), 112u);
}

TEST(Figure10, LossEndpointsMatchPaper) {
  Fixture f;
  Figure10 t = make_figure10(f.net);
  // Paper: leaves under mesh node 3 see ~28.3% compounded loss; leaves
  // 89-100 (mesh node 6) see ~13.4%.
  const double worst = f.net.path_loss(t.source, 53);
  EXPECT_NEAR(worst, 0.283, 0.002);
  const double best = f.net.path_loss(t.source, 89);
  EXPECT_NEAR(best, 0.134, 0.002);
  // Every receiver sees nonzero loss; the two quoted are the extremes
  // among leaves.
  for (net::NodeId leaf : t.leaves) {
    const double loss = f.net.path_loss(t.source, leaf);
    EXPECT_GT(loss, 0.0);
    EXPECT_LE(loss, worst + 1e-9);
    EXPECT_GE(loss, best - 1e-9);
  }
}

TEST(Figure10, ZoneOverlayIsThreeLevels) {
  Fixture f;
  Figure10 t = make_figure10(f.net);
  auto& z = f.net.zones();
  EXPECT_EQ(t.tree_zones.size(), 7u);
  EXPECT_EQ(t.leaf_zones.size(), 21u);
  EXPECT_EQ(z.level(t.z_root), 0);
  EXPECT_EQ(z.level(t.tree_zones[0]), 1);
  EXPECT_EQ(z.level(t.leaf_zones[0]), 2);
  // Leaf 29 belongs to middle 8's zone, tree zone 0, and the root.
  EXPECT_EQ(z.chain(29),
            (std::vector<net::ZoneId>{t.leaf_zones[0], t.tree_zones[0],
                                      t.z_root}));
  // The source belongs only to the root.
  EXPECT_EQ(z.chain(0), (std::vector<net::ZoneId>{t.z_root}));
  // Mesh node m is the natural ZCR of its tree zone: it is in the tree
  // zone and closest to the source.
  EXPECT_TRUE(z.contains(t.tree_zones[2], 3));
  EXPECT_EQ(z.smallest_zone(3), t.tree_zones[2]);
}

TEST(Figure10, MiddlesAndLeavesHelpers) {
  Fixture f;
  Figure10 t = make_figure10(f.net);
  EXPECT_EQ(t.middles_of(0), (std::vector<net::NodeId>{8, 9, 10}));
  EXPECT_EQ(t.middles_of(6), (std::vector<net::NodeId>{26, 27, 28}));
  EXPECT_EQ(t.leaves_of(0), (std::vector<net::NodeId>{29, 30, 31, 32}));
  EXPECT_EQ(t.leaves_of(20), (std::vector<net::NodeId>{109, 110, 111, 112}));
}

TEST(National, AnalyticsMatchPaperTable) {
  NationalParams p;  // paper defaults: 10 x 20 x 100 x 500
  NationalAnalytics a = analyze_national(p);
  ASSERT_EQ(a.levels.size(), 4u);
  EXPECT_EQ(a.total_receivers, 10000210);
  // Paper Figure 8 row "RTTs maintained / receiver": 10 / 30 / 130 / 630.
  EXPECT_EQ(a.levels[0].rtts_per_receiver, 10);
  EXPECT_EQ(a.levels[1].rtts_per_receiver, 30);
  EXPECT_EQ(a.levels[2].rtts_per_receiver, 130);
  EXPECT_EQ(a.levels[3].rtts_per_receiver, 630);
  // State ratio: 630 RTTs vs 10,000,210 peers -> 63 / 1,000,021.
  EXPECT_NEAR(a.levels[3].scoped_state_ratio * 1000021.0, 63.0, 0.01);
  // Scoped traffic is many orders of magnitude below non-scoped.
  for (const auto& l : a.levels) {
    EXPECT_LT(l.scoped_traffic / l.nonscoped_traffic, 1e-7);
  }
}

TEST(National, SmallBuildIsConsistent) {
  Fixture f;
  NationalParams p;
  p.regions = 2;
  p.cities_per_region = 2;
  p.suburbs_per_city = 2;
  p.subscribers_per_suburb = 3;
  National n = make_national(f.net, p);
  EXPECT_EQ(n.region_caches.size(), 2u);
  EXPECT_EQ(n.city_caches.size(), 4u);
  EXPECT_EQ(n.suburb_hubs.size(), 8u);
  EXPECT_EQ(n.subscribers.size(), 24u);
  EXPECT_EQ(f.net.node_count(), 1 + 2 + 4 + 8 + 24);
  // Every subscriber reaches the source.
  for (net::NodeId s : n.subscribers) {
    EXPECT_LT(f.net.path_delay(n.source, s), 1.0);
  }
  // Zone nesting: subscriber's chain has 4 levels.
  EXPECT_EQ(f.net.zones().chain(n.subscribers[0]).size(), 4u);
}

}  // namespace
}  // namespace sharq::topo
