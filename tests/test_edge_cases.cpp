#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "srm/session.hpp"
#include "topo/shapes.hpp"

namespace sharq {
namespace {

// --- SHARQFEC session estimation fallbacks ------------------------------------

TEST(EstimateFallback, UnknownPeerUsesDefaultDistance) {
  sim::Simulator simu{301};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, 3, net::LinkConfig{});
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  for (net::NodeId n : c.nodes) z.assign(n, root);
  sfq::Config cfg;
  sfq::Session s(net, c.nodes[0], {c.nodes[1], c.nodes[2]}, cfg);
  // Before start(): no session traffic at all, every estimate falls back.
  EXPECT_DOUBLE_EQ(s.agent_for(c.nodes[1]).session().estimate_dist(c.nodes[2]),
                   cfg.default_dist);
  EXPECT_DOUBLE_EQ(s.agent_for(c.nodes[1]).session().estimate_dist(c.nodes[1]),
                   0.0);
}

TEST(EstimateFallback, ConvergesAfterSessionTraffic) {
  sim::Simulator simu{302};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, {0.010, 0.030});
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  for (net::NodeId n : c.nodes) z.assign(n, root);
  sfq::Config cfg;
  sfq::Session s(net, c.nodes[0], {c.nodes[1], c.nodes[2]}, cfg);
  s.start();
  simu.run_until(15.0);
  const double est =
      s.agent_for(c.nodes[2]).session().estimate_dist(c.nodes[0]);
  EXPECT_NEAR(est, 0.040, 0.01);
}

TEST(EstimateFallback, EmptyHintsStillProduceEstimate) {
  // A NACK with no hints (sender's elections not converged) must still
  // yield a usable — if defaulted — distance, never a crash or zero.
  sim::Simulator simu{303};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, 4, net::LinkConfig{});
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  const net::ZoneId sub = z.add_zone(root);
  z.assign(c.nodes[0], root);
  z.assign(c.nodes[1], sub);
  z.assign(c.nodes[2], sub);
  z.assign(c.nodes[3], sub);
  sfq::Config cfg;
  sfq::Session s(net, c.nodes[0], {c.nodes[1], c.nodes[2], c.nodes[3]}, cfg);
  s.start();
  simu.run_until(3.0);
  const double d =
      s.agent_for(c.nodes[3]).session().estimate_dist(c.nodes[0], {});
  EXPECT_GT(d, 0.0);
}

// --- SRM internals -------------------------------------------------------------

TEST(SrmInternals, DefaultDistanceBeforeConvergence) {
  sim::Simulator simu{304};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, 2, net::LinkConfig{});
  srm::Config cfg;
  srm::Session s(net, c.nodes[0], {c.nodes[1]}, cfg);
  EXPECT_DOUBLE_EQ(s.agent_for(c.nodes[1]).distance_to(c.nodes[0]),
                   cfg.default_dist);
}

TEST(SrmInternals, SourceHoldsEverythingItSent) {
  sim::Simulator simu{305};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, 2, net::LinkConfig{});
  srm::Config cfg;
  srm::Session s(net, c.nodes[0], {c.nodes[1]}, cfg);
  s.start();
  s.send_stream(10, 1.0);
  simu.run_until(5.0);
  auto& src = s.source_agent();
  for (std::uint32_t q = 0; q < 10; ++q) EXPECT_TRUE(src.has(q));
  EXPECT_EQ(src.packets_held(), 10u);
  EXPECT_EQ(src.max_seq_seen(), 9u);
  EXPECT_TRUE(src.seen_any_data());
}

TEST(SrmInternals, ReceiverTracksMaxSeq) {
  sim::Simulator simu{306};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, 2, net::LinkConfig{});
  srm::Config cfg;
  srm::Session s(net, c.nodes[0], {c.nodes[1]}, cfg);
  s.start();
  s.send_stream(25, 1.0);
  simu.run_until(10.0);
  EXPECT_EQ(s.agent_for(c.nodes[1]).max_seq_seen(), 24u);
  EXPECT_EQ(s.agent_for(c.nodes[1]).packets_held(), 25u);
}

TEST(SrmInternals, NoTrafficNoState) {
  sim::Simulator simu{307};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, 2, net::LinkConfig{});
  srm::Config cfg;
  srm::Session s(net, c.nodes[0], {c.nodes[1]}, cfg);
  s.start();
  simu.run_until(5.0);  // sessions only, no stream
  EXPECT_FALSE(s.agent_for(c.nodes[1]).seen_any_data());
  EXPECT_EQ(s.agent_for(c.nodes[1]).requests_sent(), 0u);
}

// --- SHARQFEC misc edge cases ----------------------------------------------------

TEST(EdgeCases, SingleNodeZoneWorks) {
  // A receiver alone in its leaf zone: no peers to repair it locally, so
  // everything escalates — delivery must still complete.
  sim::Simulator simu{308};
  net::Network net{simu};
  const net::NodeId src = net.add_node();
  const net::NodeId mid = net.add_node();
  const net::NodeId lonely = net.add_node();
  net::LinkConfig l;
  l.loss_rate = 0.15;
  net.add_duplex_link(src, mid, l);
  net.add_duplex_link(mid, lonely, l);
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  const net::ZoneId mid_zone = z.add_zone(root);
  const net::ZoneId leaf_zone = z.add_zone(mid_zone);
  z.assign(src, root);
  z.assign(mid, mid_zone);
  z.assign(lonely, leaf_zone);
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, src, {mid, lonely}, cfg, &log);
  s.start();
  s.send_stream(10, 6.0);
  simu.run_until(120.0);
  EXPECT_TRUE(log.complete(lonely, 10));
  EXPECT_TRUE(log.complete(mid, 10));
}

TEST(EdgeCases, DeepHierarchyFiveLevels) {
  // Chain of zones five deep: parity slices shrink but must still work.
  sim::Simulator simu{309};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, 6, net::LinkConfig{});
  auto& z = net.zones();
  net::ZoneId zone = z.add_root();
  z.assign(c.nodes[0], zone);
  std::vector<net::NodeId> receivers;
  for (int i = 1; i < 6; ++i) {
    zone = z.add_zone(zone);
    z.assign(c.nodes[i], zone);
    receivers.push_back(c.nodes[i]);
  }
  for (int i = 0; i < 5; ++i) {
    net.set_loss_model(net.find_link(c.nodes[i], c.nodes[i + 1]),
                       std::make_unique<net::BernoulliLoss>(0.05));
  }
  rm::DeliveryLog log;
  sfq::Config cfg;
  sfq::Session s(net, c.nodes[0], receivers, cfg, &log);
  s.start();
  s.send_stream(8, 6.0);
  simu.run_until(120.0);
  for (net::NodeId r : receivers) {
    EXPECT_TRUE(log.complete(r, 8)) << "receiver " << r;
  }
}

TEST(EdgeCases, TwoParallelSessionsCoexist) {
  // Two independent SHARQFEC sessions (distinct sources and channel sets)
  // on one network must not interfere.
  sim::Simulator simu{310};
  net::Network net{simu};
  topo::Star star = topo::make_star(net, {0.01, 0.01, 0.01, 0.01});
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  z.assign(star.hub, root);
  for (net::NodeId n : star.leaves) z.assign(n, root);
  rm::DeliveryLog log_a, log_b;
  sfq::Config cfg;
  sfq::Session a(net, star.leaves[0],
                 {star.hub, star.leaves[1]}, cfg, &log_a);
  sfq::Session b(net, star.leaves[2],
                 {star.hub, star.leaves[3]}, cfg, &log_b);
  a.start();
  b.start();
  a.send_stream(5, 6.0);
  b.send_stream(7, 6.0);
  simu.run_until(60.0);
  EXPECT_TRUE(log_a.complete(star.leaves[1], 5));
  EXPECT_TRUE(log_b.complete(star.leaves[3], 7));
  EXPECT_FALSE(log_a.complete(star.leaves[3], 1));  // not a member of A
}

}  // namespace
}  // namespace sharq
