#include <gtest/gtest.h>

#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "topo/shapes.hpp"

namespace sharq::sfq {
namespace {

/// source -- cache -- {a, b}; zone = {cache, a, b}. The cache is the
/// provider-installed static ZCR (paper §5.2).
struct StaticFixture {
  sim::Simulator simu{911};
  net::Network net{simu};
  net::NodeId source, cache, a, b;
  net::ZoneId root, zone;

  StaticFixture() {
    source = net.add_node();
    cache = net.add_node();
    a = net.add_node();
    b = net.add_node();
    net::LinkConfig up;
    up.delay = 0.020;
    net.add_duplex_link(source, cache, up);
    net::LinkConfig down;
    down.delay = 0.010;
    net.add_duplex_link(cache, a, down);
    net.add_duplex_link(cache, b, down);
    root = net.zones().add_root();
    zone = net.zones().add_zone(root);
    net.zones().assign(source, root);
    for (net::NodeId n : {cache, a, b}) net.zones().assign(n, zone);
  }

  Config cfg_with_static() {
    Config cfg;
    cfg.static_zcrs[zone] = cache;
    return cfg;
  }
};

TEST(StaticZcr, KnownFromTheFirstInstant) {
  StaticFixture f;
  Session s(f.net, f.source, {f.cache, f.a, f.b}, f.cfg_with_static());
  // Even before any session traffic, everyone already knows the ZCR.
  EXPECT_EQ(s.agent_for(f.a).session().zcr_of(f.zone), f.cache);
  EXPECT_EQ(s.agent_for(f.b).session().zcr_of(f.zone), f.cache);
  EXPECT_TRUE(s.agent_for(f.cache).session().is_zcr(f.zone));
}

TEST(StaticZcr, NoBootstrapElectionChurn) {
  StaticFixture f;
  Session s(f.net, f.source, {f.cache, f.a, f.b}, f.cfg_with_static());
  s.start();
  f.simu.run_until(30.0);
  // The configured ZCR holds; nobody issued a takeover against it.
  EXPECT_EQ(s.agent_for(f.a).session().zcr_of(f.zone), f.cache);
  std::uint64_t takeovers = 0;
  for (auto& agent : s.agents()) {
    takeovers += agent->session().takeovers_sent();
  }
  EXPECT_EQ(takeovers, 0u);
}

TEST(StaticZcr, TransferUsesConfiguredCache) {
  StaticFixture f;
  rm::DeliveryLog log;
  Config cfg = f.cfg_with_static();
  Session s(f.net, f.source, {f.cache, f.a, f.b}, cfg, &log);
  s.start();
  s.send_stream(16, 6.0);
  f.simu.run_until(60.0);
  for (net::NodeId r : {f.cache, f.a, f.b}) {
    EXPECT_TRUE(log.complete(r, 16)) << "receiver " << r;
  }
}

TEST(StaticZcr, FailoverWhenStaticCacheDies) {
  StaticFixture f;
  Session s(f.net, f.source, {f.cache, f.a, f.b}, f.cfg_with_static());
  s.start();
  f.simu.run_until(10.0);
  s.agent_for(f.cache).stop();
  f.net.detach(f.cache, &s.agent_for(f.cache));
  f.simu.run_until(120.0);
  const net::NodeId replacement = s.agent_for(f.a).session().zcr_of(f.zone);
  EXPECT_NE(replacement, f.cache);
  EXPECT_NE(replacement, net::kNoNode);
  EXPECT_EQ(replacement, s.agent_for(f.b).session().zcr_of(f.zone));
}

}  // namespace
}  // namespace sharq::sfq
