#include <gtest/gtest.h>

#include <algorithm>

#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "topo/figure10.hpp"
#include "topo/shapes.hpp"

namespace sharq::sfq {
namespace {

Config session_only_cfg() {
  Config cfg;
  cfg.scoping = true;
  return cfg;
}

// Figure 9, chain case: 0 -- 2 -- 1 -- 3 (node 2 lies between the parent
// ZCR 0 and node 1). Zone = {1, 2, 3}; the election must converge on node
// 2, the receiver closest to the parent ZCR.
TEST(ZcrElection, ChainCaseElectsClosest) {
  sim::Simulator simu{5};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, {0.010, 0.015, 0.020});
  const net::NodeId n0 = c.nodes[0];  // source / parent ZCR
  const net::NodeId n2 = c.nodes[1];  // closest zone member
  const net::NodeId n1 = c.nodes[2];
  const net::NodeId n3 = c.nodes[3];

  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  const net::ZoneId child = z.add_zone(root);
  z.assign(n0, root);
  z.assign(n1, child);
  z.assign(n2, child);
  z.assign(n3, child);

  Session s(net, n0, {n2, n1, n3}, session_only_cfg());
  s.start();
  simu.run_until(40.0);

  for (net::NodeId n : {n1, n2, n3}) {
    EXPECT_EQ(s.agent_for(n).session().zcr_of(child), n2)
        << "node " << n << " disagrees";
  }
  EXPECT_TRUE(s.agent_for(n2).session().is_zcr(child));
}

// Figure 9, fork case: 0 -- 1, with 4 and 5 forking off node 1 at larger
// distances. Node 1 is closest to the parent ZCR and must win.
TEST(ZcrElection, ForkCaseElectsJunction) {
  sim::Simulator simu{6};
  net::Network net{simu};
  const net::NodeId n0 = net.add_node();
  const net::NodeId n1 = net.add_node();
  const net::NodeId n4 = net.add_node();
  const net::NodeId n5 = net.add_node();
  net::LinkConfig l01;
  l01.delay = 0.012;
  net::LinkConfig l14;
  l14.delay = 0.020;
  net::LinkConfig l15;
  l15.delay = 0.030;
  net.add_duplex_link(n0, n1, l01);
  net.add_duplex_link(n1, n4, l14);
  net.add_duplex_link(n1, n5, l15);

  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  const net::ZoneId child = z.add_zone(root);
  z.assign(n0, root);
  z.assign(n1, child);
  z.assign(n4, child);
  z.assign(n5, child);

  Session s(net, n0, {n4, n5, n1}, session_only_cfg());
  s.start();
  simu.run_until(40.0);

  for (net::NodeId n : {n1, n4, n5}) {
    EXPECT_EQ(s.agent_for(n).session().zcr_of(child), n1);
  }
}

TEST(ZcrElection, SourceIsStaticRootZcr) {
  sim::Simulator simu{7};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, 3, net::LinkConfig{});
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  for (net::NodeId n : c.nodes) z.assign(n, root);
  Session s(net, c.nodes[0], {c.nodes[1], c.nodes[2]}, session_only_cfg());
  s.start();
  simu.run_until(10.0);
  for (net::NodeId n : c.nodes) {
    EXPECT_EQ(s.agent_for(n).session().zcr_of(root), c.nodes[0]);
  }
}

TEST(ZcrElection, Figure10ElectsNaturalHierarchy) {
  sim::Simulator simu{8};
  net::Network net{simu};
  topo::Figure10 t = topo::make_figure10(net);
  Session s(net, t.source, t.receivers, session_only_cfg());
  s.start();
  simu.run_until(60.0);

  // Tree zones: the mesh node (closest to the source) must be ZCR.
  for (int m = 0; m < 7; ++m) {
    const net::NodeId mesh = t.mesh[m];
    EXPECT_EQ(s.agent_for(mesh).session().zcr_of(t.tree_zones[m]), mesh)
        << "tree zone " << m;
  }
  // Leaf zones: the middle node must be ZCR.
  for (int c = 0; c < 21; ++c) {
    const net::NodeId mid = t.middles[c];
    EXPECT_EQ(s.agent_for(mid).session().zcr_of(t.leaf_zones[c]), mid)
        << "leaf zone " << c;
  }
}

TEST(Session, DirectRttWithinSmallestZone) {
  sim::Simulator simu{9};
  net::Network net{simu};
  topo::Figure10 t = topo::make_figure10(net);
  Session s(net, t.source, t.receivers, session_only_cfg());
  s.start();
  simu.run_until(30.0);

  // Leaves 29..32 share leaf zone 0 with middle node 8: direct estimates.
  const double actual = 2.0 * net.path_delay(29, 30);
  const double est = s.agent_for(29).session().direct_rtt(
      net.zones().smallest_zone(29), 30);
  ASSERT_GT(est, 0.0);
  EXPECT_NEAR(est, actual, 0.25 * actual);
}

// The paper's §6.1 experiment: receivers at every level send NACK-like
// messages carrying their ZCR distance hints; every other receiver
// estimates the RTT indirectly. Paper result: >50% of receivers estimate
// within a few percent; we assert the median is within 15% and that the
// scheme never fails to produce an estimate.
TEST(Session, IndirectRttEstimatesAccurate) {
  sim::Simulator simu{10};
  net::Network net{simu};
  topo::Figure10 t = topo::make_figure10(net);
  Session s(net, t.source, t.receivers, session_only_cfg());
  s.start();
  simu.run_until(60.0);

  for (net::NodeId sender : {net::NodeId{3}, net::NodeId{25},
                             net::NodeId{36}}) {
    auto hints = s.agent_for(sender).session().make_hints();
    ASSERT_FALSE(hints.empty()) << "sender " << sender;
    std::vector<double> ratios;
    for (net::NodeId r : t.receivers) {
      if (r == sender) continue;
      const double est =
          s.agent_for(r).session().estimate_dist(sender, hints);
      const double actual = net.path_delay(r, sender);
      ASSERT_GT(actual, 0.0);
      ratios.push_back(est / actual);
    }
    std::sort(ratios.begin(), ratios.end());
    const double median = ratios[ratios.size() / 2];
    EXPECT_NEAR(median, 1.0, 0.15) << "sender " << sender;
    // More than half the receivers land within 25% of truth.
    const int close = static_cast<int>(
        std::count_if(ratios.begin(), ratios.end(),
                      [](double x) { return x > 0.75 && x < 1.25; }));
    EXPECT_GT(close, static_cast<int>(ratios.size()) / 2)
        << "sender " << sender;
  }
}

TEST(Session, HintsCoverChain) {
  sim::Simulator simu{11};
  net::Network net{simu};
  topo::Figure10 t = topo::make_figure10(net);
  Session s(net, t.source, t.receivers, session_only_cfg());
  s.start();
  simu.run_until(40.0);
  // A leaf's hints should mention all three levels of its chain.
  auto hints = s.agent_for(29).session().make_hints();
  EXPECT_EQ(hints.size(), 3u);
  // Distances must be monotonically non-decreasing up the chain.
  for (std::size_t i = 1; i < hints.size(); ++i) {
    EXPECT_GE(hints[i].dist + 1e-9, hints[i - 1].dist);
  }
}

TEST(Session, ZcrFailureTriggersReelection) {
  sim::Simulator simu{12};
  net::Network net{simu};
  topo::Chain c = topo::make_chain(net, {0.010, 0.015, 0.020});
  auto& z = net.zones();
  const net::ZoneId root = z.add_root();
  const net::ZoneId child = z.add_zone(root);
  z.assign(c.nodes[0], root);
  for (int i = 1; i <= 3; ++i) z.assign(c.nodes[i], child);

  Session s(net, c.nodes[0], {c.nodes[1], c.nodes[2], c.nodes[3]},
            session_only_cfg());
  s.start();
  simu.run_until(40.0);
  ASSERT_EQ(s.agent_for(c.nodes[2]).session().zcr_of(child), c.nodes[1]);

  // Kill the elected ZCR: stop its timers (no more transmissions) and
  // detach it from the network (no more receptions).
  s.agent_for(c.nodes[1]).stop();
  net.detach(c.nodes[1], &s.agent_for(c.nodes[1]));
  simu.run_until(120.0);
  // Node 2 (next closest) must take over, and node 3 must agree.
  EXPECT_EQ(s.agent_for(c.nodes[2]).session().zcr_of(child), c.nodes[2]);
  EXPECT_EQ(s.agent_for(c.nodes[3]).session().zcr_of(child), c.nodes[2]);
}

}  // namespace
}  // namespace sharq::sfq
