#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "stats/traffic_recorder.hpp"

namespace sharq::net {
namespace {

struct Probe final : MessageBase {};

class Collector final : public Agent {
 public:
  int count = 0;
  void on_receive(const Packet&) override { ++count; }
};

struct Fixture {
  sim::Simulator simu{101};
  net::Network net{simu};
};

TEST(LinkFailure, DownLinkDropsTraffic) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.add_duplex_link(a, b, LinkConfig{});
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  f.net.attach(b, &rx);
  f.net.subscribe(ch, b);

  f.net.set_link_up(f.net.find_link(a, b), false);
  f.net.send(a, ch, TrafficClass::kData, 100, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rx.count, 0);

  f.net.set_link_up(f.net.find_link(a, b), true);
  f.net.send(a, ch, TrafficClass::kData, 100, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rx.count, 1);
}

TEST(LinkFailure, InFlightPacketsDieWithLink) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  LinkConfig slow;
  slow.bandwidth_bps = 8e4;  // 1000 B -> 100 ms serialization
  slow.delay = 0.5;
  f.net.add_duplex_link(a, b, slow);
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  f.net.attach(b, &rx);
  f.net.subscribe(ch, b);
  f.net.send(a, ch, TrafficClass::kData, 1000, std::make_shared<Probe>());
  // Kill the link while the packet is still serializing.
  f.simu.after(0.05, [&] { f.net.set_link_up(f.net.find_link(a, b), false); });
  f.simu.run();
  EXPECT_EQ(rx.count, 0);
}

TEST(LinkFailure, ReroutesAroundFailure) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  const NodeId c = f.net.add_node();
  LinkConfig fast;
  fast.delay = 0.010;
  LinkConfig slow;
  slow.delay = 0.050;
  f.net.add_duplex_link(a, b, fast);   // direct
  f.net.add_duplex_link(a, c, slow);
  f.net.add_duplex_link(c, b, slow);   // detour: 100 ms
  EXPECT_NEAR(f.net.path_delay(a, b), 0.010, 1e-9);
  f.net.set_link_up(f.net.find_link(a, b), false);
  EXPECT_NEAR(f.net.path_delay(a, b), 0.100, 1e-9);
  // Traffic follows the detour.
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  f.net.attach(b, &rx);
  f.net.subscribe(ch, b);
  f.net.send(a, ch, TrafficClass::kData, 100, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rx.count, 1);
  EXPECT_GT(f.simu.now(), 0.099);
}

TEST(LinkFailure, PartitionIsUnreachable) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.add_duplex_link(a, b, LinkConfig{});
  f.net.set_link_up(f.net.find_link(a, b), false);
  f.net.set_link_up(f.net.find_link(b, a), false);
  EXPECT_EQ(f.net.path_delay(a, b), sim::kTimeInfinity);
  EXPECT_TRUE(f.net.path(a, b).empty());
  EXPECT_FALSE(f.net.link_up(f.net.find_link(a, b)));
}

TEST(TrafficRecorderLinks, WatchedLinkSeries) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  const NodeId c = f.net.add_node();
  f.net.add_duplex_link(a, b, LinkConfig{});
  f.net.add_duplex_link(b, c, LinkConfig{});
  stats::TrafficRecorder rec(f.net.node_count(), 0.1);
  rec.watch_links({f.net.find_link(a, b)});
  f.net.set_sink(&rec);
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  f.net.attach(c, &rx);
  f.net.subscribe(ch, c);
  for (int i = 0; i < 5; ++i) {
    f.net.send(a, ch, TrafficClass::kRepair, 100, std::make_shared<Probe>());
  }
  f.simu.run();
  // The a->b link carried 5 repairs; b->c is unwatched.
  EXPECT_DOUBLE_EQ(rec.link_series(TrafficClass::kRepair).total(), 5.0);
  EXPECT_DOUBLE_EQ(rec.link_series(TrafficClass::kData).total(), 0.0);
  EXPECT_EQ(rec.link_transmissions(), 10u);  // both hops counted globally
}

}  // namespace
}  // namespace sharq::net
