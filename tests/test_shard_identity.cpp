// Byte-identity of the zone-sharded parallel runtime (the determinism
// contract in src/sim/shard_runtime.hpp): the shard count comes from the
// topology and every merge point is ordered by simulated history, so a
// run with N workers must produce *byte-identical* observable output to
// the 1-worker run — the causal journal, the metrics registry export,
// and every protocol aggregate. Thread arrival order must never leak.
//
// Two scenarios, each at 1, 2, and 4 workers:
//   - a clean Figure-10 stream (the paper topology, 8 FEC groups)
//   - the same stream under a fault plan driven through at_global
//     barriers (link flap, loss window, node kill/restart)
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "net/shard_map.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/shard_runtime.hpp"
#include "sim/simulator.hpp"
#include "stats/journal.hpp"
#include "stats/lane.hpp"
#include "stats/metrics.hpp"
#include "topo/figure10.hpp"
#include "topo/shard_plan.hpp"

namespace sharq {
namespace {

constexpr std::uint32_t kGroups = 8;

struct RunOutput {
  std::string journal;
  std::string metrics;
  std::uint64_t events = 0;
  int shards = 0;
  bool complete = false;
};

RunOutput run_sharded(int workers, bool with_faults) {
  RunOutput out;
  std::ostringstream jos;
  stats::Metrics metrics;
  stats::Journal journal(jos);
  sim::Simulator simu(4242);
  net::Network net(simu);
  simu.set_metrics(&metrics);
  net.set_metrics(&metrics);
  net.set_journal(&journal);
  topo::Figure10 t = topo::make_figure10(net);

  net::ShardMap map = topo::make_zone_shard_map(net, stats::kMaxLanes);
  EXPECT_GT(map.nshards, 1) << "Figure 10 must partition into shards";
  EXPECT_GT(map.lookahead, 0.0);
  sim::ShardRuntime rt(simu, map.nshards, map.lookahead, /*seed=*/4242,
                       workers);
  out.shards = rt.nshards();
  net.enable_sharding(rt, std::move(map));
  rt.set_metrics(&metrics);
  rt.set_journal(&journal);

  sfq::Config cfg;
  cfg.metrics = &metrics;
  cfg.journal = &journal;
  cfg.max_backoff_stage = 5;
  cfg.late_join_full_history = true;
  sfq::Session session(net, t.source, t.receivers, cfg);
  session.start();
  session.send_stream(kGroups, 6.0);

  fault::Injector inject(
      net, {.kill = [&](net::NodeId n) { session.remove_receiver(n); },
            .restart = [&](net::NodeId n) { session.add_receiver(n); }});
  if (with_faults) {
    inject.set_scheduler([&rt](sim::Time at, std::function<void()> fn) {
      rt.at_global(at, std::move(fn));
    });
    fault::FaultPlan plan;
    const net::NodeId mid = t.middles.front();
    const net::NodeId leaf = t.leaves_of(0).front();
    const net::NodeId victim = t.leaves_of(0).back();
    // A link flap, a loss window on a tree edge, and one kill/restart
    // churn: each mutates global state (routing, conditioners,
    // membership), so each must cross the barrier path.
    plan.events.push_back({8.0, fault::EventKind::kLinkDown, mid, leaf,
                           0.0, 0.0, 0});
    plan.events.push_back({11.0, fault::EventKind::kLinkUp, mid, leaf,
                           0.0, 0.0, 0});
    plan.events.push_back({9.0, fault::EventKind::kLossRate, t.mesh[0], mid,
                           0.30, 0.0, 0});
    plan.events.push_back({14.0, fault::EventKind::kLossRate, t.mesh[0], mid,
                           0.0, 0.0, 0});
    plan.events.push_back({10.0, fault::EventKind::kNodeKill, victim,
                           net::kNoNode, 0.0, 0.0, 0});
    plan.events.push_back({16.0, fault::EventKind::kNodeRestart, victim,
                           net::kNoNode, 0.0, 0.0, 0});
    inject.schedule(plan);
  }

  rt.run_until(with_faults ? 60.0 : 30.0);

  out.events = rt.events_executed();
  out.complete = session.all_complete(kGroups);
  out.journal = jos.str();
  std::ostringstream mos;
  metrics.write_json(mos);
  out.metrics = mos.str();
  return out;
}

class ShardIdentity : public ::testing::TestWithParam<bool> {};

TEST_P(ShardIdentity, WorkerCountNeverChangesOutputBytes) {
  const bool faults = GetParam();
  const RunOutput one = run_sharded(1, faults);
  ASSERT_GT(one.events, 0u);
  EXPECT_TRUE(one.complete);
  EXPECT_FALSE(one.journal.empty());

  for (int workers : {2, 4}) {
    const RunOutput many = run_sharded(workers, faults);
    EXPECT_EQ(one.shards, many.shards)
        << "shard count must come from the topology, not the worker count";
    EXPECT_EQ(one.events, many.events) << "workers=" << workers;
    EXPECT_EQ(one.complete, many.complete) << "workers=" << workers;
    // The two byte-level contracts: the causal journal (every event line,
    // id, cause edge, and attribute) and the metrics registry export.
    EXPECT_EQ(one.journal, many.journal) << "workers=" << workers;
    EXPECT_EQ(one.metrics, many.metrics) << "workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(CleanAndFaulted, ShardIdentity,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "FaultPlan" : "CleanStream";
                         });

// The same seed on the *serial* engine is a different determinism domain
// (different RNG stream layout), but it must still agree on protocol
// outcome — completion is an engine-independent fact.
TEST(ShardIdentity, ShardedRunStillCompletesLikeSerial) {
  sim::Simulator simu(4242);
  net::Network net(simu);
  topo::Figure10 t = topo::make_figure10(net);
  sfq::Config cfg;
  cfg.max_backoff_stage = 5;
  sfq::Session session(net, t.source, t.receivers, cfg);
  session.start();
  session.send_stream(kGroups, 6.0);
  simu.run_until(30.0);
  EXPECT_TRUE(session.all_complete(kGroups));

  const RunOutput sharded = run_sharded(2, /*with_faults=*/false);
  EXPECT_TRUE(sharded.complete);
}

}  // namespace
}  // namespace sharq
