#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "stats/metrics.hpp"

namespace sharq::sim {
namespace {

// Every EventQueue contract test runs against BOTH ordering backends —
// the calendar queue (default) and the binary heap (determinism
// cross-check). See tests/test_event_backends.cpp for whole-protocol
// byte-identity between the two.
class EventQueueTest : public testing::TestWithParam<EventQueue::Backend> {
 protected:
  EventQueue q{GetParam()};
};

INSTANTIATE_TEST_SUITE_P(
    BothBackends, EventQueueTest,
    testing::Values(EventQueue::Backend::kCalendar,
                    EventQueue::Backend::kHeap),
    [](const testing::TestParamInfo<EventQueue::Backend>& info) {
      return info.param == EventQueue::Backend::kHeap ? "heap" : "calendar";
    });

TEST_P(EventQueueTest, OrdersByTime) {
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, TiesBreakByInsertionOrder) {
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(EventQueueTest, CancelPreventsExecution) {
  bool ran = false;
  EventId id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.cancel(id));  // second cancel is a no-op
  EXPECT_FALSE(ran);
}

TEST_P(EventQueueTest, CancelMiddleOfHeap) {
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(1); });
  EventId id = q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(3.0, [&] { order.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST_P(EventQueueTest, NextTimeSkipsCancelled) {
  EventId id = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST_P(EventQueueTest, NextTimeInfinityWhenEmpty) {
  EXPECT_EQ(q.next_time(), kTimeInfinity);
}

TEST_P(EventQueueTest, PopOnEmptyReturnsInertFired) {
  // Regression: pop() on an empty queue used to be guarded by an assert
  // only, so a Release build would pop from an empty heap (UB). It must
  // return an inert entry in every build type.
  const EventQueue::Fired f = q.pop();
  EXPECT_EQ(f.at, kTimeInfinity);
  EXPECT_FALSE(f.fn);
}

TEST_P(EventQueueTest, PopAfterCancellingEverythingIsInert) {
  // The heap still physically holds the cancelled entry; pop() must drain
  // it and then report empty rather than returning a dead callback.
  EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  const EventQueue::Fired f = q.pop();
  EXPECT_EQ(f.at, kTimeInfinity);
  EXPECT_FALSE(f.fn);
}

TEST_P(EventQueueTest, GenerationWrapRetiresSlotInsteadOfAliasing) {
  // Regression (slot-generation ABA wrap): SlotMeta::gen is a uint32
  // starting at 1 "so EventId.value is never 0". After 2^32 mint cycles
  // on one slot the generation wraps back through 0, so (a) the next
  // EventId minted on slot 0 had value 0 — indistinguishable from the
  // null handle — and (b) a stale EventId from 2^32 cycles ago aliased
  // the fresh event, letting cancel() kill the wrong one. The fix
  // retires a slot whose generation wraps; this forces the wrap via the
  // test hook instead of 2^32 real cycles.
  EventId first = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(first));  // slot 0 now free, gen 2
  q.test_set_slot_generation(0, 0xFFFFFFFFu);

  EventId last_gen = q.schedule(1.0, [] {});  // minted at gen 2^32-1
  EXPECT_TRUE(last_gen.valid());
  EXPECT_EQ(last_gen.value >> 32, 0xFFFFFFFFu);
  EXPECT_TRUE(q.cancel(last_gen));  // gen wraps to 0 -> slot retired

  // Pre-fix: the next schedule recycled slot 0 at gen 0 and returned
  // EventId{0} — an invalid handle for a live event. Post-fix the slot
  // is retired and a fresh slot is allocated.
  bool ran = false;
  EventId fresh = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(fresh.valid());
  EXPECT_NE(fresh.value & 0xFFFFFFFFu, 0u);  // not slot 0
  EXPECT_NE(fresh, first);
  EXPECT_NE(fresh, last_gen);

  // The stale wrapped-era handles must not touch the live event.
  EXPECT_FALSE(q.cancel(first));
  EXPECT_FALSE(q.cancel(last_gen));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_TRUE(ran);

  // clear() must also keep retired slots out of the rebuilt free list.
  q.clear();
  EventId after_clear = q.schedule(1.0, [] {});
  EXPECT_TRUE(after_clear.valid());
  EXPECT_NE(after_clear.value & 0xFFFFFFFFu, 0u);
}

TEST(Simulator, StepOnEmptyQueueReturnsFalse) {
  Simulator simu;
  EXPECT_FALSE(simu.step());
  EXPECT_DOUBLE_EQ(simu.now(), 0.0);
  EXPECT_EQ(simu.events_executed(), 0u);
}

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator simu;
  double seen = -1.0;
  simu.after(2.5, [&] { seen = simu.now(); });
  simu.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(simu.now(), 2.5);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator simu;
  int count = 0;
  simu.after(1.0, [&] { ++count; });
  simu.after(2.0, [&] { ++count; });
  simu.after(3.0, [&] { ++count; });
  simu.run_until(2.0);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(simu.now(), 2.0);
  simu.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator simu;
  std::vector<double> times;
  simu.after(1.0, [&] {
    times.push_back(simu.now());
    simu.after(1.0, [&] { times.push_back(simu.now()); });
  });
  simu.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator simu;
  simu.after(5.0, [&] {
    simu.after(-3.0, [&] { EXPECT_DOUBLE_EQ(simu.now(), 5.0); });
  });
  simu.run();
}

TEST(Simulator, StopDiscardsPending) {
  Simulator simu;
  int count = 0;
  simu.after(1.0, [&] {
    ++count;
    simu.stop();
  });
  simu.after(2.0, [&] { ++count; });
  simu.run();
  EXPECT_EQ(count, 1);
}

TEST(Timer, ArmFiresOnce) {
  Simulator simu;
  Timer t(simu);
  int fired = 0;
  t.arm(1.0, [&] { ++fired; });
  EXPECT_TRUE(t.pending());
  simu.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.pending());
}

TEST(Timer, RearmCancelsPrevious) {
  Simulator simu;
  Timer t(simu);
  int which = 0;
  t.arm(1.0, [&] { which = 1; });
  t.arm(2.0, [&] { which = 2; });
  simu.run();
  EXPECT_EQ(which, 2);
  EXPECT_EQ(simu.events_executed(), 1u);
}

TEST(Timer, CancelStopsFiring) {
  Simulator simu;
  Timer t(simu);
  bool fired = false;
  t.arm(1.0, [&] { fired = true; });
  t.cancel();
  simu.run();
  EXPECT_FALSE(fired);
}

TEST(Timer, ArmIfIdleDoesNotOverride) {
  Simulator simu;
  Timer t(simu);
  int which = 0;
  t.arm(1.0, [&] { which = 1; });
  t.arm_if_idle(0.5, [&] { which = 2; });
  simu.run();
  EXPECT_EQ(which, 1);
}

TEST(Timer, DeadlineReported) {
  Simulator simu;
  Timer t(simu);
  EXPECT_EQ(t.deadline(), kTimeNever);
  t.arm(4.0, [] {});
  EXPECT_DOUBLE_EQ(t.deadline(), 4.0);
}

TEST(Timer, DestructorCancels) {
  Simulator simu;
  bool fired = false;
  {
    Timer t(simu);
    t.arm(1.0, [&] { fired = true; });
  }
  simu.run();
  EXPECT_FALSE(fired);
}

TEST(Rng, DeterministicWithSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateRoughlyCorrect) {
  Rng r(7);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ForkDiverges) {
  Rng a(42);
  Rng b = a.fork();
  // Parent and child streams should not be identical.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 32);
}

TEST_P(EventQueueTest, TagCountersKeyByContentsNotAddress) {
  stats::Metrics m;
  q.set_metrics(&m);
  // Two distinct arrays spelling the same tag: equal contents, different
  // addresses. A pointer-keyed map would mint two counter families and
  // split the tallies; keying by contents must merge them.
  char tag_a[] = "queue.same_tag";
  char tag_b[] = "queue.same_tag";
  ASSERT_NE(static_cast<const void*>(tag_a), static_cast<const void*>(tag_b));
  q.schedule(1.0, [] {}, tag_a);
  q.schedule(2.0, [] {}, tag_b);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(m.counter("sim.events_scheduled", {{"tag", "queue.same_tag"}}).value(),
            2u);
  EXPECT_EQ(m.counter("sim.events_fired", {{"tag", "queue.same_tag"}}).value(),
            2u);
}

}  // namespace
}  // namespace sharq::sim
