#include <gtest/gtest.h>

#include <sstream>

#include "stats/trace_writer.hpp"
#include "stats/traffic_recorder.hpp"
#include "sim/simulator.hpp"

namespace sharq::stats {
namespace {

struct Probe final : net::MessageBase {};

struct Fixture {
  sim::Simulator simu{7};
  net::Network net{simu};
  net::NodeId a, b;
  net::ChannelId ch;

  Fixture() {
    a = net.add_node();
    b = net.add_node();
    net.add_duplex_link(a, b, net::LinkConfig{});
    ch = net.create_channel();
    net.subscribe(ch, b);
  }
};

TEST(TraceWriter, EmitsHopAndReceiveLines) {
  Fixture f;
  std::ostringstream os;
  TraceWriter tw(os, &f.net);
  f.net.set_sink(&tw);
  f.net.send(f.a, f.ch, net::TrafficClass::kData, 100,
             std::make_shared<Probe>());
  f.simu.run();
  const std::string out = os.str();
  EXPECT_NE(out.find("h 0 0 1 data 100"), std::string::npos) << out;
  EXPECT_NE(out.find("\nr 0.01008 1 - data 100"), std::string::npos) << out;
  EXPECT_EQ(tw.lines_written(), 2u);
}

TEST(TraceWriter, DropLinesOnLoss) {
  Fixture f;
  f.net.set_loss_model(f.net.find_link(f.a, f.b),
                       std::make_unique<net::BernoulliLoss>(1.0));
  std::ostringstream os;
  TraceWriter tw(os, &f.net);
  f.net.set_sink(&tw);
  f.net.send(f.a, f.ch, net::TrafficClass::kRepair, 50,
             std::make_shared<Probe>());
  f.simu.run();
  EXPECT_NE(os.str().find("\nd "), std::string::npos) << os.str();
  EXPECT_EQ(os.str().find("\nr "), std::string::npos) << os.str();
}

TEST(TraceWriter, DropLinesCarryTheReason) {
  // Regression: on_drop used to discard its DropReason argument, so a
  // random loss, a queue overflow and a dead link all printed identical
  // 'd' lines. The reason is now the trailing field.
  Fixture f;
  f.net.set_loss_model(f.net.find_link(f.a, f.b),
                       std::make_unique<net::BernoulliLoss>(1.0));
  std::ostringstream os;
  TraceWriter tw(os, &f.net);
  f.net.set_sink(&tw);
  f.net.send(f.a, f.ch, net::TrafficClass::kRepair, 50,
             std::make_shared<Probe>());
  f.simu.run();
  const std::string out = os.str();
  ASSERT_NE(out.find("\nd "), std::string::npos) << out;
  EXPECT_NE(out.find(" loss\n"), std::string::npos) << out;
}

TEST(TraceWriter, ClassFilterSuppressesLines) {
  Fixture f;
  std::ostringstream os;
  TraceWriter tw(os, &f.net);
  tw.enable_class(net::TrafficClass::kSession, false);
  f.net.set_sink(&tw);
  f.net.send(f.a, f.ch, net::TrafficClass::kSession, 64,
             std::make_shared<Probe>(), /*lossless=*/true);
  f.simu.run();
  EXPECT_EQ(tw.lines_written(), 0u);
}

TEST(TraceWriter, EveryTrafficClassTracedByDefault) {
  // Enumerates the whole enum so a newly added class cannot silently fall
  // outside the filter's range.
  for (int c = 0; c < net::kTrafficClassCount; ++c) {
    Fixture f;
    std::ostringstream os;
    TraceWriter tw(os, &f.net);
    f.net.set_sink(&tw);
    f.net.send(f.a, f.ch, static_cast<net::TrafficClass>(c), 64,
               std::make_shared<Probe>(), /*lossless=*/true);
    f.simu.run();
    EXPECT_EQ(tw.lines_written(), 2u) << "class " << c;
  }
}

TEST(TraceWriter, DisablingOneClassLeavesOthersTraced) {
  for (int off = 0; off < net::kTrafficClassCount; ++off) {
    for (int c = 0; c < net::kTrafficClassCount; ++c) {
      Fixture f;
      std::ostringstream os;
      TraceWriter tw(os, &f.net);
      tw.enable_class(static_cast<net::TrafficClass>(off), false);
      f.net.set_sink(&tw);
      f.net.send(f.a, f.ch, static_cast<net::TrafficClass>(c), 64,
                 std::make_shared<Probe>(), /*lossless=*/true);
      f.simu.run();
      EXPECT_EQ(tw.lines_written(), c == off ? 0u : 2u)
          << "off " << off << " class " << c;
    }
  }
}

TEST(TraceWriter, OutOfRangeClassIsIgnoredNotUb) {
  // Regression: enabled() used to compute `1u << cls` unchecked, which is
  // UB for cls >= 32 (future enum growth or a forged byte off the wire).
  // Both the filter setter and the trace path must treat such a class as
  // never-enabled instead.
  Fixture f;
  std::ostringstream os;
  TraceWriter tw(os, &f.net);
  const auto forged = static_cast<net::TrafficClass>(200);
  tw.enable_class(forged, true);   // must not shift out of range
  tw.enable_class(forged, false);  // must not clear unrelated bits
  f.net.set_sink(&tw);
  f.net.send(f.a, f.ch, forged, 64, std::make_shared<Probe>(),
             /*lossless=*/true);
  f.simu.run();
  EXPECT_EQ(tw.lines_written(), 0u);
  // Real classes stay enabled after the out-of-range enable_class calls.
  f.net.send(f.a, f.ch, net::TrafficClass::kData, 64,
             std::make_shared<Probe>(), /*lossless=*/true);
  f.simu.run();
  EXPECT_EQ(tw.lines_written(), 2u);
}

TEST(TraceWriter, ChainsToNextSink) {
  Fixture f;
  std::ostringstream os;
  TrafficRecorder rec(f.net.node_count(), 0.1);
  TraceWriter tw(os, &f.net, &rec);
  f.net.set_sink(&tw);
  f.net.send(f.a, f.ch, net::TrafficClass::kData, 100,
             std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(tw.lines_written(), 2u);
  EXPECT_DOUBLE_EQ(rec.node_total(f.b, net::TrafficClass::kData), 1.0);
  EXPECT_EQ(rec.link_transmissions(), 1u);
}

TEST(TraceWriter, WithoutNetworkPrintsLinkId) {
  Fixture f;
  std::ostringstream os;
  TraceWriter tw(os, nullptr);
  f.net.set_sink(&tw);
  f.net.send(f.a, f.ch, net::TrafficClass::kData, 100,
             std::make_shared<Probe>());
  f.simu.run();
  EXPECT_NE(os.str().find("h 0 0 - data"), std::string::npos) << os.str();
}

}  // namespace
}  // namespace sharq::stats
