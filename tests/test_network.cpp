#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace sharq::net {
namespace {

struct Probe final : MessageBase {
  int tag = 0;
};

/// Collects deliveries for assertions.
class Collector final : public Agent {
 public:
  struct Rx {
    sim::Time at;
    std::uint64_t uid;
    NodeId origin;
    TrafficClass cls;
  };
  std::vector<Rx> received;
  sim::Simulator* simu = nullptr;

  void on_receive(const Packet& p) override {
    received.push_back(Rx{simu->now(), p.uid, p.origin, p.cls});
  }
};

struct Net2 {
  sim::Simulator simu{12345};
  Network net{simu};
};

TEST(ZoneHierarchy, NestingAndChains) {
  ZoneHierarchy z;
  const ZoneId root = z.add_root();
  const ZoneId a = z.add_zone(root);
  const ZoneId b = z.add_zone(root);
  const ZoneId a1 = z.add_zone(a);
  z.assign(1, a1);
  z.assign(2, a);
  z.assign(3, b);
  EXPECT_TRUE(z.contains(root, 1));
  EXPECT_TRUE(z.contains(a, 1));
  EXPECT_TRUE(z.contains(a1, 1));
  EXPECT_FALSE(z.contains(b, 1));
  EXPECT_EQ(z.chain(1), (std::vector<ZoneId>{a1, a, root}));
  EXPECT_EQ(z.common_zone(1, 2), a);
  EXPECT_EQ(z.common_zone(1, 3), root);
  EXPECT_EQ(z.level(a1), 2);
  EXPECT_TRUE(z.is_ancestor_or_self(root, a1));
  EXPECT_FALSE(z.is_ancestor_or_self(b, a1));
}

TEST(ZoneHierarchy, ReassignRemovesOldMembership) {
  ZoneHierarchy z;
  const ZoneId root = z.add_root();
  const ZoneId a = z.add_zone(root);
  const ZoneId b = z.add_zone(root);
  z.assign(7, a);
  z.assign(7, b);
  EXPECT_FALSE(z.contains(a, 7));
  EXPECT_TRUE(z.contains(b, 7));
  EXPECT_EQ(z.smallest_zone(7), b);
}

TEST(Network, UnicastStyleDeliveryTiming) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;  // 1000 bytes -> 1 ms serialization
  cfg.delay = 0.010;
  f.net.add_duplex_link(a, b, cfg);

  const ChannelId ch = f.net.create_channel();
  Collector rx;
  rx.simu = &f.simu;
  f.net.attach(b, &rx);
  f.net.subscribe(ch, b);

  f.net.send(a, ch, TrafficClass::kData, 1000, std::make_shared<Probe>());
  f.simu.run();
  ASSERT_EQ(rx.received.size(), 1u);
  EXPECT_NEAR(rx.received[0].at, 0.011, 1e-9);  // tx 1 ms + prop 10 ms
}

TEST(Network, SerializationQueuesBackToBack) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e6;
  cfg.delay = 0.0;
  f.net.add_duplex_link(a, b, cfg);
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  rx.simu = &f.simu;
  f.net.attach(b, &rx);
  f.net.subscribe(ch, b);

  for (int i = 0; i < 3; ++i) {
    f.net.send(a, ch, TrafficClass::kData, 1000, std::make_shared<Probe>());
  }
  f.simu.run();
  ASSERT_EQ(rx.received.size(), 3u);
  EXPECT_NEAR(rx.received[0].at, 0.001, 1e-9);
  EXPECT_NEAR(rx.received[1].at, 0.002, 1e-9);
  EXPECT_NEAR(rx.received[2].at, 0.003, 1e-9);
}

TEST(Network, MulticastFanOutDeliversOncePerSubscriber) {
  Net2 f;
  const NodeId src = f.net.add_node();
  std::vector<NodeId> leaves;
  std::vector<std::unique_ptr<Collector>> sinks;
  LinkConfig cfg;
  for (int i = 0; i < 5; ++i) {
    const NodeId n = f.net.add_node();
    f.net.add_duplex_link(src, n, cfg);
    leaves.push_back(n);
  }
  const ChannelId ch = f.net.create_channel();
  for (NodeId n : leaves) {
    auto c = std::make_unique<Collector>();
    c->simu = &f.simu;
    f.net.attach(n, c.get());
    f.net.subscribe(ch, n);
    sinks.push_back(std::move(c));
  }
  f.net.send(src, ch, TrafficClass::kData, 100, std::make_shared<Probe>());
  f.simu.run();
  for (auto& s : sinks) EXPECT_EQ(s->received.size(), 1u);
}

TEST(Network, NoLoopbackToOrigin) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.add_duplex_link(a, b, LinkConfig{});
  const ChannelId ch = f.net.create_channel();
  Collector rxa, rxb;
  rxa.simu = rxb.simu = &f.simu;
  f.net.attach(a, &rxa);
  f.net.attach(b, &rxb);
  f.net.subscribe(ch, a);
  f.net.subscribe(ch, b);
  f.net.send(a, ch, TrafficClass::kData, 100, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rxa.received.size(), 0u);
  EXPECT_EQ(rxb.received.size(), 1u);
}

TEST(Network, SharedLinkCarriesOneCopy) {
  // src -- r -- {a, b}: the src->r link must carry a single copy.
  Net2 f;
  const NodeId src = f.net.add_node();
  const NodeId r = f.net.add_node();
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.add_duplex_link(src, r, LinkConfig{});
  f.net.add_duplex_link(r, a, LinkConfig{});
  f.net.add_duplex_link(r, b, LinkConfig{});
  const ChannelId ch = f.net.create_channel();
  Collector rxa, rxb;
  rxa.simu = rxb.simu = &f.simu;
  f.net.attach(a, &rxa);
  f.net.attach(b, &rxb);
  f.net.subscribe(ch, a);
  f.net.subscribe(ch, b);

  class CountSink final : public TrafficSink {
   public:
    int transmits = 0;
    void on_deliver(sim::Time, NodeId, const Packet&) override {}
    void on_transmit(sim::Time, LinkId, const Packet&) override {
      ++transmits;
    }
  } sink;
  f.net.set_sink(&sink);
  f.net.send(src, ch, TrafficClass::kData, 100, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rxa.received.size(), 1u);
  EXPECT_EQ(rxb.received.size(), 1u);
  EXPECT_EQ(sink.transmits, 3);  // src->r, r->a, r->b
}

TEST(Network, ScopedChannelConfinedToZone) {
  // root zone {all}; child zone {r, a}. A scoped send from a must not
  // reach b (outside the zone).
  Net2 f;
  const NodeId src = f.net.add_node();
  const NodeId r = f.net.add_node();
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.add_duplex_link(src, r, LinkConfig{});
  f.net.add_duplex_link(r, a, LinkConfig{});
  f.net.add_duplex_link(r, b, LinkConfig{});
  auto& z = f.net.zones();
  const ZoneId root = z.add_root();
  const ZoneId child = z.add_zone(root);
  z.assign(src, root);
  z.assign(b, root);
  z.assign(r, child);
  z.assign(a, child);

  const ChannelId scoped = f.net.create_channel(child);
  Collector rxr, rxb;
  rxr.simu = rxb.simu = &f.simu;
  f.net.attach(r, &rxr);
  f.net.attach(b, &rxb);
  f.net.subscribe(scoped, r);
  f.net.subscribe(scoped, b);  // subscribed but outside the zone
  f.net.send(a, scoped, TrafficClass::kRepair, 100, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rxr.received.size(), 1u);
  EXPECT_EQ(rxb.received.size(), 0u);
}

TEST(Network, SendFromOutsideScopeGoesNowhere) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.add_duplex_link(a, b, LinkConfig{});
  auto& z = f.net.zones();
  const ZoneId root = z.add_root();
  const ZoneId child = z.add_zone(root);
  z.assign(a, root);   // a outside child
  z.assign(b, child);
  const ChannelId scoped = f.net.create_channel(child);
  Collector rxb;
  rxb.simu = &f.simu;
  f.net.attach(b, &rxb);
  f.net.subscribe(scoped, b);
  f.net.send(a, scoped, TrafficClass::kData, 100, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rxb.received.size(), 0u);
}

TEST(Network, LossyLinkDropsAtConfiguredRate) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  LinkConfig cfg;
  cfg.loss_rate = 0.25;
  cfg.bandwidth_bps = 1e9;
  f.net.add_duplex_link(a, b, cfg);
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  rx.simu = &f.simu;
  f.net.attach(b, &rx);
  f.net.subscribe(ch, b);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    f.net.send(a, ch, TrafficClass::kData, 100, std::make_shared<Probe>());
  }
  f.simu.run();
  const double rate = 1.0 - rx.received.size() / static_cast<double>(n);
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Network, LosslessFlagBypassesLoss) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  LinkConfig cfg;
  cfg.loss_rate = 0.9;
  f.net.add_duplex_link(a, b, cfg);
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  rx.simu = &f.simu;
  f.net.attach(b, &rx);
  f.net.subscribe(ch, b);
  for (int i = 0; i < 100; ++i) {
    f.net.send(a, ch, TrafficClass::kSession, 64, std::make_shared<Probe>(),
               /*lossless=*/true);
  }
  f.simu.run();
  EXPECT_EQ(rx.received.size(), 100u);
}

TEST(Network, QueueLimitDropsExcess) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  LinkConfig cfg;
  cfg.bandwidth_bps = 8e3;  // 1000 bytes -> 1 s serialization
  cfg.queue_limit_pkts = 2;
  f.net.add_duplex_link(a, b, cfg);
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  rx.simu = &f.simu;
  f.net.attach(b, &rx);
  f.net.subscribe(ch, b);
  for (int i = 0; i < 10; ++i) {
    f.net.send(a, ch, TrafficClass::kData, 1000, std::make_shared<Probe>());
  }
  f.simu.run();
  EXPECT_EQ(rx.received.size(), 2u);
}

TEST(Network, PathQueriesMatchTopology) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId m = f.net.add_node();
  const NodeId b = f.net.add_node();
  LinkConfig l1;
  l1.delay = 0.010;
  l1.loss_rate = 0.1;
  LinkConfig l2;
  l2.delay = 0.020;
  l2.loss_rate = 0.2;
  f.net.add_duplex_link(a, m, l1);
  f.net.add_duplex_link(m, b, l2);
  EXPECT_NEAR(f.net.path_delay(a, b), 0.030, 1e-9);
  EXPECT_NEAR(f.net.path_loss(a, b), 1.0 - 0.9 * 0.8, 1e-9);
  EXPECT_EQ(f.net.path(a, b), (std::vector<NodeId>{a, m, b}));
  EXPECT_DOUBLE_EQ(f.net.path_delay(a, a), 0.0);
}

TEST(Network, ShortestPathPreferred) {
  Net2 f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  const NodeId c = f.net.add_node();
  LinkConfig slow;
  slow.delay = 0.100;
  LinkConfig fast;
  fast.delay = 0.010;
  f.net.add_duplex_link(a, b, slow);           // direct but slow
  f.net.add_duplex_link(a, c, fast);
  f.net.add_duplex_link(c, b, fast);           // via c: 20 ms
  EXPECT_NEAR(f.net.path_delay(a, b), 0.020, 1e-9);
  EXPECT_EQ(f.net.path(a, b).size(), 3u);
}

TEST(Network, MembershipChangeRebuildsForwarding) {
  Net2 f;
  const NodeId src = f.net.add_node();
  const NodeId a = f.net.add_node();
  f.net.add_duplex_link(src, a, LinkConfig{});
  const ChannelId ch = f.net.create_channel();
  Collector rx;
  rx.simu = &f.simu;
  f.net.attach(a, &rx);
  f.net.send(src, ch, TrafficClass::kData, 64, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rx.received.size(), 0u);  // not subscribed yet
  f.net.subscribe(ch, a);
  f.net.send(src, ch, TrafficClass::kData, 64, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rx.received.size(), 1u);
  f.net.unsubscribe(ch, a);
  f.net.send(src, ch, TrafficClass::kData, 64, std::make_shared<Probe>());
  f.simu.run();
  EXPECT_EQ(rx.received.size(), 1u);
}

TEST(GilbertElliott, MeanRateMatchesStationary) {
  GilbertElliottLoss ge(0.1, 0.3, 0.01, 0.5);
  // pi_bad = 0.1/0.4 = 0.25 -> mean = 0.75*0.01 + 0.25*0.5 = 0.1325
  EXPECT_NEAR(ge.mean_loss_rate(), 0.1325, 1e-12);
  sim::Rng rng(5);
  int drops = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) drops += ge.drop_next(rng) ? 1 : 0;
  EXPECT_NEAR(drops / static_cast<double>(n), 0.1325, 0.01);
}

TEST(GilbertElliott, BurstStatisticsPinned) {
  // The chaos soak leans on the burst *shape*, not just the mean rate:
  // pin the statistics that distinguish Gilbert-Elliott from Bernoulli.
  GilbertElliottLoss ge(0.05, 0.25, 0.0, 1.0);  // clean good, lossy bad
  sim::Rng rng(42);
  const int n = 400000;
  int drops = 0, runs = 0, paired = 0, prev = 0;
  int run_len = 0;
  long long run_total = 0;
  for (int i = 0; i < n; ++i) {
    const int d = ge.drop_next(rng) ? 1 : 0;
    drops += d;
    paired += (d && prev) ? 1 : 0;
    if (d) {
      ++run_len;
    } else if (run_len > 0) {
      ++runs;
      run_total += run_len;
      run_len = 0;
    }
    prev = d;
  }
  // Stationary drop rate: pi_bad = 0.05/0.30 = 1/6.
  EXPECT_NEAR(drops / static_cast<double>(n), 1.0 / 6.0, 0.01);
  // Bad-state sojourns are geometric with mean 1/p_bg = 4, and with
  // bad_loss=1 every sojourn is one unbroken drop burst.
  ASSERT_GT(runs, 0);
  EXPECT_NEAR(run_total / static_cast<double>(runs), 4.0, 0.25);
  // Burstiness proper: P(drop | previous dropped) must match the chain's
  // 1 - p_bg = 0.75, far above the unconditional rate a Bernoulli model
  // with the same mean would give.
  EXPECT_NEAR(paired / static_cast<double>(drops), 0.75, 0.02);
}

TEST(GilbertElliott, SameSeedSameDecisions) {
  // Chaos reproducibility depends on loss models consuming randomness
  // deterministically: two instances walked with equal seeds must agree
  // decision-for-decision, and clones must not share mutable state.
  GilbertElliottLoss a(0.1, 0.3, 0.02, 0.6);
  auto b = a.clone();
  sim::Rng ra(7), rb(7);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(a.drop_next(ra), b->drop_next(rb)) << "diverged at " << i;
  }
}

}  // namespace
}  // namespace sharq::net
