// Journal tests: the causal flight recorder's wire format, the reader /
// analyzer library behind sharq_trace, the byte-identical same-seed
// contract on the paper's Figure 10 topology and under a chaos plan, and
// causal-chain completeness for a forced-loss recovery.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "rm/delivery_log.hpp"
#include "sharqfec/protocol.hpp"
#include "sim/simulator.hpp"
#include "stats/journal.hpp"
#include "stats/journal_reader.hpp"
#include "stats/traffic_recorder.hpp"
#include "topo/figure10.hpp"

namespace sharq::stats {
namespace {

// --- writer ------------------------------------------------------------------

TEST(Journal, GoldenLineFormat) {
  std::ostringstream os;
  Journal j(os);
  const EventId a = j.emit("group.first_arrival", 6.0, 2, 0, 0, {{"index", 3}});
  const EventId b =
      j.emit("nack.sent", 6.25, 2, 0, a, {{"level", 1}, {"llc", 2.5}});
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(j.events(), 2u);
  EXPECT_EQ(os.str(),
            "{\"id\":1,\"t\":6,\"node\":2,\"group\":0,"
            "\"ev\":\"group.first_arrival\",\"cause\":0,"
            "\"attrs\":{\"index\":3}}\n"
            "{\"id\":2,\"t\":6.25,\"node\":2,\"group\":0,"
            "\"ev\":\"nack.sent\",\"cause\":1,"
            "\"attrs\":{\"level\":1,\"llc\":2.5}}\n");
}

TEST(Journal, EscapesStringAttrs) {
  std::ostringstream os;
  Journal j(os);
  j.emit("x", 0.0, 0, -1, 0, {{"via", std::string("a\"b\nc")}});
  EXPECT_NE(os.str().find("\"via\":\"a\\\"b\\nc\""), std::string::npos)
      << os.str();
}

TEST(Journal, UidBindingResolvesCrossNodeCauses) {
  std::ostringstream os;
  Journal j(os);
  const EventId sent = j.emit("nack.sent", 1.0, 3, 7, 0);
  j.bind_uid(42, sent);
  j.bind_uid(0, sent);  // uid 0 means "send failed"; never bound
  EXPECT_EQ(j.uid_event(42), sent);
  EXPECT_EQ(j.uid_event(0), 0u);
  EXPECT_EQ(j.uid_event(99), 0u);
}

// --- reader ------------------------------------------------------------------

TEST(JournalReader, RoundTripsWriterOutput) {
  std::ostringstream os;
  Journal j(os);
  const EventId a = j.emit("group.first_arrival", 6.0, 2, 0, 0, {{"index", 3}});
  j.emit("repair.received", 6.5, 2, 0, a,
         {{"mode", "reactive"}, {"useful", 1}});
  std::istringstream is(os.str());
  std::string error;
  const auto events = read_journal(is, &error);
  ASSERT_TRUE(events.has_value()) << error;
  ASSERT_EQ(events->size(), 2u);
  const JournalEvent& first = (*events)[0];
  EXPECT_EQ(first.id, 1u);
  EXPECT_DOUBLE_EQ(first.t, 6.0);
  EXPECT_EQ(first.node, 2);
  EXPECT_EQ(first.group, 0);
  EXPECT_EQ(first.ev, "group.first_arrival");
  EXPECT_EQ(first.cause, 0u);
  EXPECT_DOUBLE_EQ(first.attr_num("index"), 3.0);
  const JournalEvent& second = (*events)[1];
  EXPECT_EQ(second.cause, 1u);
  ASSERT_NE(second.attr("mode"), nullptr);
  EXPECT_EQ(*second.attr("mode"), "reactive");
  EXPECT_DOUBLE_EQ(second.attr_num("useful"), 1.0);
  EXPECT_DOUBLE_EQ(second.attr_num("absent", -2.0), -2.0);
}

TEST(JournalReader, RejectsMalformedLines) {
  std::string error;
  EXPECT_FALSE(parse_journal_line("{", &error).has_value());
  EXPECT_FALSE(parse_journal_line("", &error).has_value());
  EXPECT_FALSE(parse_journal_line("{\"t\":1}", &error).has_value());  // no id
  EXPECT_FALSE(
      parse_journal_line("{\"id\":1,\"ev\":\"x\"} trailing", &error)
          .has_value());
  EXPECT_TRUE(
      parse_journal_line("{\"id\":1,\"ev\":\"x\"}", &error).has_value());
  // Unknown keys from a future writer are tolerated, not fatal.
  EXPECT_TRUE(parse_journal_line(
                  "{\"id\":1,\"ev\":\"x\",\"zone\":4,\"tag\":\"y\"}", &error)
                  .has_value());

  std::istringstream is("{\"id\":1,\"ev\":\"x\"}\nnot json\n");
  EXPECT_FALSE(read_journal(is, &error).has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

// --- analyzer: handcrafted journals ------------------------------------------

JournalEvent make(std::uint64_t id, double t, int node, std::int64_t group,
                  std::string ev, std::uint64_t cause,
                  std::map<std::string, std::string> attrs = {}) {
  JournalEvent e;
  e.id = id;
  e.t = t;
  e.node = node;
  e.group = group;
  e.ev = std::move(ev);
  e.cause = cause;
  e.attrs = std::move(attrs);
  return e;
}

TEST(JournalAnalyzer, TimelineOrdersAndMeasuresEdges) {
  const std::vector<JournalEvent> events = {
      make(1, 1.0, 2, 0, "group.first_arrival", 0),
      make(2, 1.2, 2, 0, "loss.detected", 1),
      make(3, 1.3, 2, 5, "group.first_arrival", 0),  // other group
      make(4, 1.5, 2, 0, "nack.sent", 2),
      make(5, 1.6, 0, 0, "nack.heard", 4),  // cross-node edge
  };
  const auto rows = timeline(events, 0);
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].event->id, 1u);
  EXPECT_EQ(rows[0].depth, 0);
  EXPECT_DOUBLE_EQ(rows[0].edge_latency, -1.0);
  EXPECT_EQ(rows[2].event->id, 4u);
  EXPECT_EQ(rows[2].depth, 2);
  EXPECT_NEAR(rows[2].edge_latency, 0.3, 1e-12);

  // Node filter keeps cross-node cause latency resolvable.
  const auto node0 = timeline(events, 0, 0);
  ASSERT_EQ(node0.size(), 1u);
  EXPECT_EQ(node0[0].event->id, 5u);
  EXPECT_NEAR(node0[0].edge_latency, 0.1, 1e-12);
  EXPECT_EQ(node0[0].depth, 3);
}

TEST(JournalAnalyzer, BreakdownSplitsPhases) {
  const std::vector<JournalEvent> events = {
      make(1, 1.0, 2, 0, "group.first_arrival", 0),
      make(2, 1.2, 2, 0, "loss.detected", 1),
      make(3, 1.5, 2, 0, "nack.sent", 2, {{"level", "1"}}),
      make(4, 1.7, 2, 0, "repair.received", 3, {{"useful", "0"}}),
      make(5, 1.8, 2, 0, "repair.received", 3, {{"useful", "1"}}),
      make(6, 1.9, 2, 0, "group.complete", 5),
  };
  const auto spans = span_breakdowns(events);
  ASSERT_EQ(spans.size(), 1u);
  const SpanBreakdown& s = spans[0];
  EXPECT_EQ(s.node, 2);
  EXPECT_EQ(s.group, 0);
  EXPECT_EQ(s.level, 1);
  EXPECT_TRUE(s.complete);
  EXPECT_NEAR(s.detection, 0.2, 1e-12);
  EXPECT_NEAR(s.request, 0.3, 1e-12);
  EXPECT_NEAR(s.reply, 0.3, 1e-12);  // measured to the USEFUL repair
  EXPECT_NEAR(s.decode, 0.1, 1e-12);
  EXPECT_NEAR(s.total, 0.9, 1e-12);
}

TEST(JournalAnalyzer, BreakdownLossFreeSpan) {
  const auto spans = span_breakdowns({
      make(1, 1.0, 3, 4, "group.first_arrival", 0),
      make(2, 1.4, 3, 4, "group.complete", 1),
  });
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].level, -1);
  EXPECT_DOUBLE_EQ(spans[0].detection, -1.0);
  EXPECT_DOUBLE_EQ(spans[0].request, -1.0);
  EXPECT_DOUBLE_EQ(spans[0].reply, -1.0);
  EXPECT_NEAR(spans[0].decode, 0.4, 1e-12);
  EXPECT_NEAR(spans[0].total, 0.4, 1e-12);
}

std::vector<Anomaly> only(const std::vector<Anomaly>& all,
                          const std::string& kind) {
  std::vector<Anomaly> out;
  for (const Anomaly& a : all) {
    if (a.kind == kind) out.push_back(a);
  }
  return out;
}

TEST(JournalAnalyzer, DetectsNackImplosion) {
  // Both fixtures leave the spans stuck (NACKs, no group.complete) —
  // only the burst must additionally read as an implosion.
  std::vector<JournalEvent> burst;
  std::vector<JournalEvent> spread;
  for (int i = 0; i < 10; ++i) {
    burst.push_back(make(static_cast<std::uint64_t>(i + 1), 2.0 + 0.01 * i,
                         i, 0, "nack.sent", 0));
    spread.push_back(make(static_cast<std::uint64_t>(i + 1), 2.0 + 1.0 * i,
                          i, 0, "nack.sent", 0));
  }
  const auto hit = only(detect_anomalies(burst), "nack-implosion");
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_EQ(hit[0].group, 0);
  EXPECT_TRUE(only(detect_anomalies(spread), "nack-implosion").empty());
}

TEST(JournalAnalyzer, DetectsDuplicateRepair) {
  const auto dup = detect_anomalies({
      make(1, 1.0, 0, 3, "repair.sent", 0, {{"index", "5"}}),
      make(2, 1.2, 7, 3, "repair.sent", 0, {{"index", "5"}}),
      make(3, 1.3, 0, 3, "repair.sent", 0, {{"index", "6"}}),
  });
  ASSERT_EQ(dup.size(), 1u);
  EXPECT_EQ(dup[0].kind, "duplicate-repair");
  EXPECT_EQ(dup[0].group, 3);
  EXPECT_NE(dup[0].detail.find("index 5"), std::string::npos);
  EXPECT_TRUE(detect_anomalies({
                  make(1, 1.0, 0, 3, "repair.sent", 0, {{"index", "5"}}),
                  make(2, 1.2, 0, 3, "repair.sent", 0, {{"index", "6"}}),
              })
                  .empty());
  // Scoped repair: the same index from two *different* zones is by
  // design (nested zones cannot hear each other), not an overlap.
  EXPECT_TRUE(detect_anomalies({
                  make(1, 1.0, 0, 3, "repair.sent", 0,
                       {{"index", "5"}, {"zone", "1"}}),
                  make(2, 1.2, 7, 3, "repair.sent", 0,
                       {{"index", "5"}, {"zone", "2"}}),
              })
                  .empty());
}

TEST(JournalAnalyzer, DetectsScopeEscalationStorm) {
  std::vector<JournalEvent> three;
  for (int i = 0; i < 3; ++i) {
    three.push_back(make(static_cast<std::uint64_t>(i + 1), 1.0 + 0.5 * i, 4,
                         2, "scope.escalated", 0));
  }
  const auto storm = detect_anomalies(three);
  ASSERT_EQ(storm.size(), 1u);
  EXPECT_EQ(storm[0].kind, "scope-escalation-storm");
  EXPECT_EQ(storm[0].node, 4);
  three.pop_back();
  EXPECT_TRUE(detect_anomalies(three).empty());
}

TEST(JournalAnalyzer, DetectsStuckGroup) {
  const auto stuck = detect_anomalies({
      make(1, 1.0, 2, 0, "group.first_arrival", 0),
      make(2, 1.2, 2, 0, "loss.detected", 1),
  });
  ASSERT_EQ(stuck.size(), 1u);
  EXPECT_EQ(stuck[0].kind, "stuck-group");
  EXPECT_EQ(stuck[0].node, 2);
  EXPECT_TRUE(detect_anomalies({
                  make(1, 1.0, 2, 0, "group.first_arrival", 0),
                  make(2, 1.2, 2, 0, "loss.detected", 1),
                  make(3, 1.9, 2, 0, "group.complete", 2),
              })
                  .empty());
}

TEST(JournalAnalyzer, PerfettoExportIsDeterministicAndCarriesFlows) {
  const std::vector<JournalEvent> events = {
      make(1, 1.0, 2, 0, "group.first_arrival", 0, {{"index", "3"}}),
      make(2, 1.5, 2, 0, "nack.sent", 1, {{"via", "timer"}}),
  };
  std::ostringstream a;
  std::ostringstream b;
  write_perfetto(a, events);
  write_perfetto(b, events);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(a.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(a.str().find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(a.str().find("\"ph\":\"f\""), std::string::npos);
  // Numeric attrs re-emit bare; string attrs re-emit quoted.
  EXPECT_NE(a.str().find("\"index\":3"), std::string::npos);
  EXPECT_NE(a.str().find("\"via\":\"timer\""), std::string::npos);
}

// --- series export -----------------------------------------------------------

TEST(TrafficSeries, WriteSeriesJsonGolden) {
  TrafficRecorder rec(2, 0.1);
  net::Packet data;
  data.cls = net::TrafficClass::kData;
  data.size_bytes = 100;
  net::Packet nack;
  nack.cls = net::TrafficClass::kNack;
  nack.size_bytes = 40;
  rec.on_deliver(0.05, 0, data);
  rec.on_deliver(0.15, 1, data);
  rec.on_deliver(0.0, 0, nack);
  std::ostringstream os;
  rec.write_series_json(os);
  EXPECT_EQ(os.str(),
            "{\"bin_width\":0.1,\"classes\":{\"control\":[],"
            "\"data\":[1,1],\"nack\":[1],\"repair\":[],\"session\":[]}}");
}

// --- end-to-end: Figure 10 ---------------------------------------------------

std::string run_fig10_journal(std::uint64_t seed) {
  std::ostringstream os;
  Journal journal(os);
  sim::Simulator simu(seed);
  net::Network net(simu);
  net.set_journal(&journal);
  const topo::Figure10 t = topo::make_figure10(net);
  sfq::Config cfg;
  cfg.journal = &journal;
  rm::DeliveryLog log;
  sfq::Session s(net, t.source, t.receivers, cfg, &log);
  s.start();
  s.send_stream(8, 6.0);
  simu.run_until(45.0);
  EXPECT_TRUE(s.all_complete(8));
  return os.str();
}

TEST(JournalE2E, Fig10SameSeedIsByteIdentical) {
  const std::string a = run_fig10_journal(7);
  const std::string b = run_fig10_journal(7);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // Different seed, different story.
  EXPECT_NE(a, run_fig10_journal(8));
}

TEST(JournalE2E, Fig10CausalChainsAreComplete) {
  std::istringstream is(run_fig10_journal(7));
  std::string error;
  const auto parsed = read_journal(is, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const std::vector<JournalEvent>& events = *parsed;
  ASSERT_FALSE(events.empty());

  // The journal is append-only in causal order: ids strictly increase,
  // time never goes backwards, and every cause points at an id already
  // emitted.
  std::map<std::uint64_t, const JournalEvent*> by_id;
  std::uint64_t last_id = 0;
  double last_t = 0.0;
  for (const JournalEvent& ev : events) {
    EXPECT_GT(ev.id, last_id);
    EXPECT_GE(ev.t, last_t);
    last_id = ev.id;
    last_t = ev.t;
    if (ev.cause != 0) {
      EXPECT_TRUE(by_id.count(ev.cause))
          << "event " << ev.id << " (" << ev.ev << ") has dangling cause "
          << ev.cause;
      EXPECT_LT(ev.cause, ev.id);
    }
    by_id.emplace(ev.id, &ev);
  }

  // A lossy Figure-10 run must exercise the whole lifecycle.
  std::map<std::string, int> counts;
  for (const JournalEvent& ev : events) ++counts[ev.ev];
  for (const char* must :
       {"group.first_arrival", "loss.detected", "nack.sent", "nack.heard",
        "repair.sent", "repair.received", "group.complete"}) {
    EXPECT_GT(counts[must], 0) << must;
  }

  // Forced-loss chain completeness: at least one reactive recovery whose
  // ancestry walks repair.received -> ... -> nack.sent -> ... ->
  // loss.detected and bottoms out at the span root (group.first_arrival).
  bool found_full_chain = false;
  for (const JournalEvent& ev : events) {
    if (ev.ev != "repair.received" || found_full_chain) continue;
    std::set<std::string> ancestry;
    const JournalEvent* cur = &ev;
    int hops = 0;
    while (cur->cause != 0 && hops++ < 64) {
      const auto it = by_id.find(cur->cause);
      if (it == by_id.end()) break;
      cur = it->second;
      ancestry.insert(cur->ev);
    }
    if (cur->cause == 0 && cur->ev == "group.first_arrival" &&
        ancestry.count("nack.sent") && ancestry.count("loss.detected")) {
      found_full_chain = true;
    }
  }
  EXPECT_TRUE(found_full_chain)
      << "no repair.received traces back through nack.sent and "
         "loss.detected to its group.first_arrival root";
}

// --- end-to-end: chaos plan --------------------------------------------------

std::string run_chaos_journal(std::uint64_t seed) {
  std::ostringstream os;
  Journal journal(os);
  sim::Simulator simu(seed);
  net::Network net(simu);
  net.set_journal(&journal);

  // source -- hub -- {relay, a, b}; one zone around the hub's star.
  const net::NodeId source = net.add_node();
  const net::NodeId hub = net.add_node();
  const net::NodeId relay = net.add_node();
  const net::NodeId a = net.add_node();
  const net::NodeId b = net.add_node();
  net::LinkConfig up;
  up.delay = 0.020;
  net.add_duplex_link(source, hub, up);
  net::LinkConfig down;
  down.delay = 0.010;
  for (const net::NodeId n : {relay, a, b}) net.add_duplex_link(hub, n, down);
  const net::ZoneId root = net.zones().add_root();
  const net::ZoneId zone = net.zones().add_zone(root);
  net.zones().assign(source, root);
  for (const net::NodeId n : {hub, relay, a, b}) net.zones().assign(n, zone);

  sfq::Config cfg;
  cfg.journal = &journal;
  cfg.static_zcrs[zone] = relay;
  rm::DeliveryLog log;
  sfq::Session s(net, source, {relay, a, b}, cfg, &log);
  s.start();

  std::string error;
  const auto plan = fault::FaultPlan::parse(
      "plan journal-soak\n"
      "at 6.05 loss " + std::to_string(hub) + " " + std::to_string(a) +
          " 0.6\n"
          "at 9 loss " + std::to_string(hub) + " " + std::to_string(a) +
          " 0\n",
      &error);
  EXPECT_TRUE(plan.has_value()) << error;
  fault::Injector inject(net, {});
  inject.schedule(*plan);

  s.send_stream(6, 6.0);
  simu.run_until(30.0);
  return os.str();
}

TEST(JournalE2E, ChaosPlanSameSeedIsByteIdentical) {
  const std::string a = run_chaos_journal(17);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, run_chaos_journal(17));
}

}  // namespace
}  // namespace sharq::stats
