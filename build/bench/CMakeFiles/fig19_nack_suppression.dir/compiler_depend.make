# Empty compiler generated dependencies file for fig19_nack_suppression.
# This may be replaced when dependencies are built.
