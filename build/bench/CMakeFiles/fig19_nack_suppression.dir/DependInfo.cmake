
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig19_nack_suppression.cpp" "bench/CMakeFiles/fig19_nack_suppression.dir/fig19_nack_suppression.cpp.o" "gcc" "bench/CMakeFiles/fig19_nack_suppression.dir/fig19_nack_suppression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/sharq_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sharqfec/CMakeFiles/sharq_sharqfec.dir/DependInfo.cmake"
  "/root/repo/build/src/srm/CMakeFiles/sharq_srm.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/sharq_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/sharq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rm/CMakeFiles/sharq_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/sharq_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sharq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sharq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
