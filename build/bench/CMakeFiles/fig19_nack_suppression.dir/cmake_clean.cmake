file(REMOVE_RECURSE
  "CMakeFiles/fig19_nack_suppression.dir/fig19_nack_suppression.cpp.o"
  "CMakeFiles/fig19_nack_suppression.dir/fig19_nack_suppression.cpp.o.d"
  "fig19_nack_suppression"
  "fig19_nack_suppression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_nack_suppression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
