file(REMOVE_RECURSE
  "CMakeFiles/fig14_15_srm_vs_ecsrm.dir/fig14_15_srm_vs_ecsrm.cpp.o"
  "CMakeFiles/fig14_15_srm_vs_ecsrm.dir/fig14_15_srm_vs_ecsrm.cpp.o.d"
  "fig14_15_srm_vs_ecsrm"
  "fig14_15_srm_vs_ecsrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_15_srm_vs_ecsrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
