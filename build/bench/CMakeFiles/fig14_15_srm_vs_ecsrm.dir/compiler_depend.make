# Empty compiler generated dependencies file for fig14_15_srm_vs_ecsrm.
# This may be replaced when dependencies are built.
