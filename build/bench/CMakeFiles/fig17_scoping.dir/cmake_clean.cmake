file(REMOVE_RECURSE
  "CMakeFiles/fig17_scoping.dir/fig17_scoping.cpp.o"
  "CMakeFiles/fig17_scoping.dir/fig17_scoping.cpp.o.d"
  "fig17_scoping"
  "fig17_scoping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_scoping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
