# Empty compiler generated dependencies file for fig17_scoping.
# This may be replaced when dependencies are built.
