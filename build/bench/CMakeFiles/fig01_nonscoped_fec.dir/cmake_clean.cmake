file(REMOVE_RECURSE
  "CMakeFiles/fig01_nonscoped_fec.dir/fig01_nonscoped_fec.cpp.o"
  "CMakeFiles/fig01_nonscoped_fec.dir/fig01_nonscoped_fec.cpp.o.d"
  "fig01_nonscoped_fec"
  "fig01_nonscoped_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_nonscoped_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
