# Empty dependencies file for fig01_nonscoped_fec.
# This may be replaced when dependencies are built.
