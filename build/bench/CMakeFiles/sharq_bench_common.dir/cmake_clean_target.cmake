file(REMOVE_RECURSE
  "libsharq_bench_common.a"
)
