file(REMOVE_RECURSE
  "CMakeFiles/sharq_bench_common.dir/fig_common.cpp.o"
  "CMakeFiles/sharq_bench_common.dir/fig_common.cpp.o.d"
  "libsharq_bench_common.a"
  "libsharq_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
