# Empty dependencies file for sharq_bench_common.
# This may be replaced when dependencies are built.
