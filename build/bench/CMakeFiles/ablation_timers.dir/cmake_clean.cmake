file(REMOVE_RECURSE
  "CMakeFiles/ablation_timers.dir/ablation_timers.cpp.o"
  "CMakeFiles/ablation_timers.dir/ablation_timers.cpp.o.d"
  "ablation_timers"
  "ablation_timers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
