# Empty dependencies file for ablation_timers.
# This may be replaced when dependencies are built.
