file(REMOVE_RECURSE
  "CMakeFiles/micro_fec.dir/micro_fec.cpp.o"
  "CMakeFiles/micro_fec.dir/micro_fec.cpp.o.d"
  "micro_fec"
  "micro_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
