# Empty dependencies file for micro_fec.
# This may be replaced when dependencies are built.
