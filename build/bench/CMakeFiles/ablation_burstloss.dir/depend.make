# Empty dependencies file for ablation_burstloss.
# This may be replaced when dependencies are built.
