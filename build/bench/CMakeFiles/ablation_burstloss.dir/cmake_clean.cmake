file(REMOVE_RECURSE
  "CMakeFiles/ablation_burstloss.dir/ablation_burstloss.cpp.o"
  "CMakeFiles/ablation_burstloss.dir/ablation_burstloss.cpp.o.d"
  "ablation_burstloss"
  "ablation_burstloss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_burstloss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
