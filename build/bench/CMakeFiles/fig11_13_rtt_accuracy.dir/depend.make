# Empty dependencies file for fig11_13_rtt_accuracy.
# This may be replaced when dependencies are built.
