file(REMOVE_RECURSE
  "CMakeFiles/fig11_13_rtt_accuracy.dir/fig11_13_rtt_accuracy.cpp.o"
  "CMakeFiles/fig11_13_rtt_accuracy.dir/fig11_13_rtt_accuracy.cpp.o.d"
  "fig11_13_rtt_accuracy"
  "fig11_13_rtt_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_13_rtt_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
