file(REMOVE_RECURSE
  "CMakeFiles/fig02_scoped_injection.dir/fig02_scoped_injection.cpp.o"
  "CMakeFiles/fig02_scoped_injection.dir/fig02_scoped_injection.cpp.o.d"
  "fig02_scoped_injection"
  "fig02_scoped_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_scoped_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
