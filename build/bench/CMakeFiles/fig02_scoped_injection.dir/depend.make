# Empty dependencies file for fig02_scoped_injection.
# This may be replaced when dependencies are built.
