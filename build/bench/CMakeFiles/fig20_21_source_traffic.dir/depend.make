# Empty dependencies file for fig20_21_source_traffic.
# This may be replaced when dependencies are built.
