file(REMOVE_RECURSE
  "CMakeFiles/fig20_21_source_traffic.dir/fig20_21_source_traffic.cpp.o"
  "CMakeFiles/fig20_21_source_traffic.dir/fig20_21_source_traffic.cpp.o.d"
  "fig20_21_source_traffic"
  "fig20_21_source_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_21_source_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
