# Empty compiler generated dependencies file for fig18_injection.
# This may be replaced when dependencies are built.
