file(REMOVE_RECURSE
  "CMakeFiles/fig18_injection.dir/fig18_injection.cpp.o"
  "CMakeFiles/fig18_injection.dir/fig18_injection.cpp.o.d"
  "fig18_injection"
  "fig18_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
