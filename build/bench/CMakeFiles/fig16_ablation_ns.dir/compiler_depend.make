# Empty compiler generated dependencies file for fig16_ablation_ns.
# This may be replaced when dependencies are built.
