file(REMOVE_RECURSE
  "CMakeFiles/fig16_ablation_ns.dir/fig16_ablation_ns.cpp.o"
  "CMakeFiles/fig16_ablation_ns.dir/fig16_ablation_ns.cpp.o.d"
  "fig16_ablation_ns"
  "fig16_ablation_ns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ablation_ns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
