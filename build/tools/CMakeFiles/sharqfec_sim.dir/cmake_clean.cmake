file(REMOVE_RECURSE
  "CMakeFiles/sharqfec_sim.dir/sharqfec_sim.cpp.o"
  "CMakeFiles/sharqfec_sim.dir/sharqfec_sim.cpp.o.d"
  "sharqfec_sim"
  "sharqfec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharqfec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
