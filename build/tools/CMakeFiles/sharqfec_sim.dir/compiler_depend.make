# Empty compiler generated dependencies file for sharqfec_sim.
# This may be replaced when dependencies are built.
