file(REMOVE_RECURSE
  "CMakeFiles/national_broadcast.dir/national_broadcast.cpp.o"
  "CMakeFiles/national_broadcast.dir/national_broadcast.cpp.o.d"
  "national_broadcast"
  "national_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/national_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
