# Empty dependencies file for national_broadcast.
# This may be replaced when dependencies are built.
