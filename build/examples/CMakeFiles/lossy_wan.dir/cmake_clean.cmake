file(REMOVE_RECURSE
  "CMakeFiles/lossy_wan.dir/lossy_wan.cpp.o"
  "CMakeFiles/lossy_wan.dir/lossy_wan.cpp.o.d"
  "lossy_wan"
  "lossy_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lossy_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
