# Empty dependencies file for sharq_fec.
# This may be replaced when dependencies are built.
