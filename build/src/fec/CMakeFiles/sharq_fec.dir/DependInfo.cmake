
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fec/gf256.cpp" "src/fec/CMakeFiles/sharq_fec.dir/gf256.cpp.o" "gcc" "src/fec/CMakeFiles/sharq_fec.dir/gf256.cpp.o.d"
  "/root/repo/src/fec/group_codec.cpp" "src/fec/CMakeFiles/sharq_fec.dir/group_codec.cpp.o" "gcc" "src/fec/CMakeFiles/sharq_fec.dir/group_codec.cpp.o.d"
  "/root/repo/src/fec/matrix.cpp" "src/fec/CMakeFiles/sharq_fec.dir/matrix.cpp.o" "gcc" "src/fec/CMakeFiles/sharq_fec.dir/matrix.cpp.o.d"
  "/root/repo/src/fec/reed_solomon.cpp" "src/fec/CMakeFiles/sharq_fec.dir/reed_solomon.cpp.o" "gcc" "src/fec/CMakeFiles/sharq_fec.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
