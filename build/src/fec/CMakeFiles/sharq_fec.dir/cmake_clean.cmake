file(REMOVE_RECURSE
  "CMakeFiles/sharq_fec.dir/gf256.cpp.o"
  "CMakeFiles/sharq_fec.dir/gf256.cpp.o.d"
  "CMakeFiles/sharq_fec.dir/group_codec.cpp.o"
  "CMakeFiles/sharq_fec.dir/group_codec.cpp.o.d"
  "CMakeFiles/sharq_fec.dir/matrix.cpp.o"
  "CMakeFiles/sharq_fec.dir/matrix.cpp.o.d"
  "CMakeFiles/sharq_fec.dir/reed_solomon.cpp.o"
  "CMakeFiles/sharq_fec.dir/reed_solomon.cpp.o.d"
  "libsharq_fec.a"
  "libsharq_fec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_fec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
