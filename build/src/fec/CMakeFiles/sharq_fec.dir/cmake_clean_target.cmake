file(REMOVE_RECURSE
  "libsharq_fec.a"
)
