file(REMOVE_RECURSE
  "libsharq_net.a"
)
