# Empty compiler generated dependencies file for sharq_net.
# This may be replaced when dependencies are built.
