file(REMOVE_RECURSE
  "CMakeFiles/sharq_net.dir/loss.cpp.o"
  "CMakeFiles/sharq_net.dir/loss.cpp.o.d"
  "CMakeFiles/sharq_net.dir/network.cpp.o"
  "CMakeFiles/sharq_net.dir/network.cpp.o.d"
  "CMakeFiles/sharq_net.dir/zone.cpp.o"
  "CMakeFiles/sharq_net.dir/zone.cpp.o.d"
  "libsharq_net.a"
  "libsharq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
