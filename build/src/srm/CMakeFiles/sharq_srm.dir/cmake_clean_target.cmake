file(REMOVE_RECURSE
  "libsharq_srm.a"
)
