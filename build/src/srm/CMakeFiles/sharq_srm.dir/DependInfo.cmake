
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/srm/agent.cpp" "src/srm/CMakeFiles/sharq_srm.dir/agent.cpp.o" "gcc" "src/srm/CMakeFiles/sharq_srm.dir/agent.cpp.o.d"
  "/root/repo/src/srm/session.cpp" "src/srm/CMakeFiles/sharq_srm.dir/session.cpp.o" "gcc" "src/srm/CMakeFiles/sharq_srm.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rm/CMakeFiles/sharq_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sharq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sharq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
