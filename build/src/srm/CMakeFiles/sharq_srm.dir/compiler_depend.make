# Empty compiler generated dependencies file for sharq_srm.
# This may be replaced when dependencies are built.
