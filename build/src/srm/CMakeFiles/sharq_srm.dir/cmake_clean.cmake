file(REMOVE_RECURSE
  "CMakeFiles/sharq_srm.dir/agent.cpp.o"
  "CMakeFiles/sharq_srm.dir/agent.cpp.o.d"
  "CMakeFiles/sharq_srm.dir/session.cpp.o"
  "CMakeFiles/sharq_srm.dir/session.cpp.o.d"
  "libsharq_srm.a"
  "libsharq_srm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_srm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
