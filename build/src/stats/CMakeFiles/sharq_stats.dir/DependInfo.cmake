
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/report.cpp" "src/stats/CMakeFiles/sharq_stats.dir/report.cpp.o" "gcc" "src/stats/CMakeFiles/sharq_stats.dir/report.cpp.o.d"
  "/root/repo/src/stats/time_series.cpp" "src/stats/CMakeFiles/sharq_stats.dir/time_series.cpp.o" "gcc" "src/stats/CMakeFiles/sharq_stats.dir/time_series.cpp.o.d"
  "/root/repo/src/stats/trace_writer.cpp" "src/stats/CMakeFiles/sharq_stats.dir/trace_writer.cpp.o" "gcc" "src/stats/CMakeFiles/sharq_stats.dir/trace_writer.cpp.o.d"
  "/root/repo/src/stats/traffic_recorder.cpp" "src/stats/CMakeFiles/sharq_stats.dir/traffic_recorder.cpp.o" "gcc" "src/stats/CMakeFiles/sharq_stats.dir/traffic_recorder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sharq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sharq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
