file(REMOVE_RECURSE
  "CMakeFiles/sharq_stats.dir/report.cpp.o"
  "CMakeFiles/sharq_stats.dir/report.cpp.o.d"
  "CMakeFiles/sharq_stats.dir/time_series.cpp.o"
  "CMakeFiles/sharq_stats.dir/time_series.cpp.o.d"
  "CMakeFiles/sharq_stats.dir/trace_writer.cpp.o"
  "CMakeFiles/sharq_stats.dir/trace_writer.cpp.o.d"
  "CMakeFiles/sharq_stats.dir/traffic_recorder.cpp.o"
  "CMakeFiles/sharq_stats.dir/traffic_recorder.cpp.o.d"
  "libsharq_stats.a"
  "libsharq_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
