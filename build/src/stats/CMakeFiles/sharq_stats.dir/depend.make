# Empty dependencies file for sharq_stats.
# This may be replaced when dependencies are built.
