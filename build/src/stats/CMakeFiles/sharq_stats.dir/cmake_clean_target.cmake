file(REMOVE_RECURSE
  "libsharq_stats.a"
)
