
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/figure10.cpp" "src/topo/CMakeFiles/sharq_topo.dir/figure10.cpp.o" "gcc" "src/topo/CMakeFiles/sharq_topo.dir/figure10.cpp.o.d"
  "/root/repo/src/topo/national.cpp" "src/topo/CMakeFiles/sharq_topo.dir/national.cpp.o" "gcc" "src/topo/CMakeFiles/sharq_topo.dir/national.cpp.o.d"
  "/root/repo/src/topo/shapes.cpp" "src/topo/CMakeFiles/sharq_topo.dir/shapes.cpp.o" "gcc" "src/topo/CMakeFiles/sharq_topo.dir/shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sharq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sharq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
