# Empty dependencies file for sharq_topo.
# This may be replaced when dependencies are built.
