file(REMOVE_RECURSE
  "CMakeFiles/sharq_topo.dir/figure10.cpp.o"
  "CMakeFiles/sharq_topo.dir/figure10.cpp.o.d"
  "CMakeFiles/sharq_topo.dir/national.cpp.o"
  "CMakeFiles/sharq_topo.dir/national.cpp.o.d"
  "CMakeFiles/sharq_topo.dir/shapes.cpp.o"
  "CMakeFiles/sharq_topo.dir/shapes.cpp.o.d"
  "libsharq_topo.a"
  "libsharq_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
