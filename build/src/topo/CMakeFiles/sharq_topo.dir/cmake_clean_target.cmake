file(REMOVE_RECURSE
  "libsharq_topo.a"
)
