file(REMOVE_RECURSE
  "CMakeFiles/sharq_sim.dir/event_queue.cpp.o"
  "CMakeFiles/sharq_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/sharq_sim.dir/simulator.cpp.o"
  "CMakeFiles/sharq_sim.dir/simulator.cpp.o.d"
  "libsharq_sim.a"
  "libsharq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
