file(REMOVE_RECURSE
  "libsharq_sim.a"
)
