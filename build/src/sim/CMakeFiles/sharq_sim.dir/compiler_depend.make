# Empty compiler generated dependencies file for sharq_sim.
# This may be replaced when dependencies are built.
