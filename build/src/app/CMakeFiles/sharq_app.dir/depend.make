# Empty dependencies file for sharq_app.
# This may be replaced when dependencies are built.
