file(REMOVE_RECURSE
  "libsharq_app.a"
)
