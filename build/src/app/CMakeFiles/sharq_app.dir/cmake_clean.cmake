file(REMOVE_RECURSE
  "CMakeFiles/sharq_app.dir/file_transfer.cpp.o"
  "CMakeFiles/sharq_app.dir/file_transfer.cpp.o.d"
  "libsharq_app.a"
  "libsharq_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
