file(REMOVE_RECURSE
  "libsharq_sharqfec.a"
)
