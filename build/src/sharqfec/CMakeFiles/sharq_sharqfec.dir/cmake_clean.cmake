file(REMOVE_RECURSE
  "CMakeFiles/sharq_sharqfec.dir/agent.cpp.o"
  "CMakeFiles/sharq_sharqfec.dir/agent.cpp.o.d"
  "CMakeFiles/sharq_sharqfec.dir/hierarchy.cpp.o"
  "CMakeFiles/sharq_sharqfec.dir/hierarchy.cpp.o.d"
  "CMakeFiles/sharq_sharqfec.dir/protocol.cpp.o"
  "CMakeFiles/sharq_sharqfec.dir/protocol.cpp.o.d"
  "CMakeFiles/sharq_sharqfec.dir/session_manager.cpp.o"
  "CMakeFiles/sharq_sharqfec.dir/session_manager.cpp.o.d"
  "CMakeFiles/sharq_sharqfec.dir/transfer.cpp.o"
  "CMakeFiles/sharq_sharqfec.dir/transfer.cpp.o.d"
  "CMakeFiles/sharq_sharqfec.dir/wire.cpp.o"
  "CMakeFiles/sharq_sharqfec.dir/wire.cpp.o.d"
  "libsharq_sharqfec.a"
  "libsharq_sharqfec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_sharqfec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
