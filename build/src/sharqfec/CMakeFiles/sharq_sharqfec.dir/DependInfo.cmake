
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sharqfec/agent.cpp" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/agent.cpp.o" "gcc" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/agent.cpp.o.d"
  "/root/repo/src/sharqfec/hierarchy.cpp" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/hierarchy.cpp.o" "gcc" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/hierarchy.cpp.o.d"
  "/root/repo/src/sharqfec/protocol.cpp" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/protocol.cpp.o" "gcc" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/protocol.cpp.o.d"
  "/root/repo/src/sharqfec/session_manager.cpp" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/session_manager.cpp.o" "gcc" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/session_manager.cpp.o.d"
  "/root/repo/src/sharqfec/transfer.cpp" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/transfer.cpp.o" "gcc" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/transfer.cpp.o.d"
  "/root/repo/src/sharqfec/wire.cpp" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/wire.cpp.o" "gcc" "src/sharqfec/CMakeFiles/sharq_sharqfec.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rm/CMakeFiles/sharq_rm.dir/DependInfo.cmake"
  "/root/repo/build/src/fec/CMakeFiles/sharq_fec.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sharq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sharq_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
