# Empty compiler generated dependencies file for sharq_sharqfec.
# This may be replaced when dependencies are built.
