file(REMOVE_RECURSE
  "CMakeFiles/sharq_rm.dir/delivery_log.cpp.o"
  "CMakeFiles/sharq_rm.dir/delivery_log.cpp.o.d"
  "libsharq_rm.a"
  "libsharq_rm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharq_rm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
