file(REMOVE_RECURSE
  "libsharq_rm.a"
)
