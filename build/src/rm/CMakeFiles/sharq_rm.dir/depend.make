# Empty dependencies file for sharq_rm.
# This may be replaced when dependencies are built.
