file(REMOVE_RECURSE
  "CMakeFiles/test_file_transfer.dir/test_file_transfer.cpp.o"
  "CMakeFiles/test_file_transfer.dir/test_file_transfer.cpp.o.d"
  "test_file_transfer"
  "test_file_transfer.pdb"
  "test_file_transfer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
