# Empty compiler generated dependencies file for test_wire_live.
# This may be replaced when dependencies are built.
