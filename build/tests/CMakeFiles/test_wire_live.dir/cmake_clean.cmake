file(REMOVE_RECURSE
  "CMakeFiles/test_wire_live.dir/test_wire_live.cpp.o"
  "CMakeFiles/test_wire_live.dir/test_wire_live.cpp.o.d"
  "test_wire_live"
  "test_wire_live.pdb"
  "test_wire_live[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wire_live.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
