# Empty dependencies file for test_timers.
# This may be replaced when dependencies are built.
