file(REMOVE_RECURSE
  "CMakeFiles/test_timers.dir/test_timers.cpp.o"
  "CMakeFiles/test_timers.dir/test_timers.cpp.o.d"
  "test_timers"
  "test_timers.pdb"
  "test_timers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
