file(REMOVE_RECURSE
  "CMakeFiles/test_static_zcr.dir/test_static_zcr.cpp.o"
  "CMakeFiles/test_static_zcr.dir/test_static_zcr.cpp.o.d"
  "test_static_zcr"
  "test_static_zcr.pdb"
  "test_static_zcr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_static_zcr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
