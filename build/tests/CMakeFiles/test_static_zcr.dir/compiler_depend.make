# Empty compiler generated dependencies file for test_static_zcr.
# This may be replaced when dependencies are built.
