file(REMOVE_RECURSE
  "CMakeFiles/test_network_failures.dir/test_network_failures.cpp.o"
  "CMakeFiles/test_network_failures.dir/test_network_failures.cpp.o.d"
  "test_network_failures"
  "test_network_failures.pdb"
  "test_network_failures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
