# Empty compiler generated dependencies file for test_network_failures.
# This may be replaced when dependencies are built.
