# Empty dependencies file for test_trace_writer.
# This may be replaced when dependencies are built.
