file(REMOVE_RECURSE
  "CMakeFiles/test_trace_writer.dir/test_trace_writer.cpp.o"
  "CMakeFiles/test_trace_writer.dir/test_trace_writer.cpp.o.d"
  "test_trace_writer"
  "test_trace_writer.pdb"
  "test_trace_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
