# Empty dependencies file for test_transfer_unit.
# This may be replaced when dependencies are built.
