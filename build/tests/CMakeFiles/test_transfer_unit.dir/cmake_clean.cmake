file(REMOVE_RECURSE
  "CMakeFiles/test_transfer_unit.dir/test_transfer_unit.cpp.o"
  "CMakeFiles/test_transfer_unit.dir/test_transfer_unit.cpp.o.d"
  "test_transfer_unit"
  "test_transfer_unit.pdb"
  "test_transfer_unit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transfer_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
