# Empty dependencies file for test_late_join.
# This may be replaced when dependencies are built.
