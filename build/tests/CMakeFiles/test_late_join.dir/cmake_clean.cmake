file(REMOVE_RECURSE
  "CMakeFiles/test_late_join.dir/test_late_join.cpp.o"
  "CMakeFiles/test_late_join.dir/test_late_join.cpp.o.d"
  "test_late_join"
  "test_late_join.pdb"
  "test_late_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_late_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
