add_test([=[WireLive.EveryLiveMessageRoundTrips]=]  /root/repo/build/tests/test_wire_live [==[--gtest_filter=WireLive.EveryLiveMessageRoundTrips]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[WireLive.EveryLiveMessageRoundTrips]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_wire_live_TESTS WireLive.EveryLiveMessageRoundTrips)
